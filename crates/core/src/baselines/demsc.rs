//! Dynamic ensemble-member selection: Top.sel, Clus and the drift-aware
//! DEMSC (Saadallah, Priebe & Morik, ECML-PKDD 2019).

use crate::combiner::{inverse_error_weights, Combiner, SlidingErrorWindow};
use eadrl_rng::DetRng;
use eadrl_timeseries::drift::PageHinkley;

/// Spreads SWE weights over a selected subset of models (zero elsewhere).
fn subset_swe_weights(errors: &[f64], selected: &[usize], m: usize) -> Vec<f64> {
    if selected.is_empty() {
        return vec![1.0 / m.max(1) as f64; m];
    }
    let sub_errors: Vec<f64> = selected.iter().map(|&i| errors[i]).collect();
    let sub_w = inverse_error_weights(&sub_errors);
    let mut w = vec![0.0; m];
    for (&i, &wi) in selected.iter().zip(sub_w.iter()) {
        w[i] = wi;
    }
    w
}

/// Indices of the `count` models with the lowest error.
fn top_indices(errors: &[f64], count: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..errors.len()).collect();
    idx.sort_by(|&a, &b| {
        errors[a]
            .partial_cmp(&errors[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(count.max(1));
    idx
}

/// **Top.sel** — selects the best-performing fraction of base models over a
/// sliding window and combines them with SWE.
#[derive(Debug, Clone)]
pub struct TopSel {
    window: SlidingErrorWindow,
    fraction: f64,
}

impl TopSel {
    /// Creates a Top.sel combiner keeping `fraction ∈ (0, 1]` of the pool.
    pub fn new(window: usize, fraction: f64) -> Self {
        TopSel {
            window: SlidingErrorWindow::new(window),
            fraction: fraction.clamp(0.01, 1.0),
        }
    }
}

impl Combiner for TopSel {
    fn name(&self) -> &str {
        "Top.sel"
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        for (p, &a) in preds.iter().zip(actuals.iter()) {
            self.window.push(p, a);
        }
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        match self.window.model_rmse(m) {
            Some(errors) => {
                let count = ((m as f64 * self.fraction).ceil() as usize).clamp(1, m);
                let selected = top_indices(&errors, count);
                subset_swe_weights(&errors, &selected, m)
            }
            None => vec![1.0 / m.max(1) as f64; m],
        }
    }

    fn observe(&mut self, preds: &[f64], actual: f64) {
        self.window.push(preds, actual);
    }
}

/// Correlation distance between two prediction tracks
/// (`1 - Pearson correlation`, 1.0 when degenerate).
fn correlation_distance(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < 2 {
        return 1.0;
    }
    let ma = a[..n].iter().sum::<f64>() / n as f64;
    let mb = b[..n].iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va < 1e-12 || vb < 1e-12 {
        return 1.0;
    }
    1.0 - cov / (va.sqrt() * vb.sqrt())
}

/// Clusters model prediction tracks with farthest-point seeding followed by
/// nearest-seed assignment; returns one representative (lowest error) per
/// cluster.
fn cluster_representatives(
    tracks: &[Vec<f64>],
    errors: &[f64],
    n_clusters: usize,
    rng: &mut DetRng,
) -> Vec<usize> {
    let m = tracks.len();
    let k = n_clusters.clamp(1, m);
    // Farthest-point seeding from a random start.
    let mut seeds = vec![rng.random_range(0..m)];
    while seeds.len() < k {
        let next = (0..m).filter(|i| !seeds.contains(i)).max_by(|&a, &b| {
            let da: f64 = seeds
                .iter()
                .map(|&s| correlation_distance(&tracks[a], &tracks[s]))
                .fold(f64::INFINITY, f64::min);
            let db: f64 = seeds
                .iter()
                .map(|&s| correlation_distance(&tracks[b], &tracks[s]))
                .fold(f64::INFINITY, f64::min);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        match next {
            Some(i) => seeds.push(i),
            None => break,
        }
    }
    // Assign every model to the nearest seed.
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); seeds.len()];
    for i in 0..m {
        let best = seeds
            .iter()
            .enumerate()
            .min_by(|(_, &s1), (_, &s2)| {
                let d1 = correlation_distance(&tracks[i], &tracks[s1]);
                let d2 = correlation_distance(&tracks[i], &tracks[s2]);
                d1.partial_cmp(&d2).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(c, _)| c)
            .unwrap_or(0);
        clusters[best].push(i);
    }
    // Representative = most accurate member of each cluster.
    clusters
        .into_iter()
        .filter_map(|c| {
            c.into_iter().min_by(|&a, &b| {
                errors[a]
                    .partial_cmp(&errors[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        })
        .collect()
}

/// **Clus** — groups similar models by the correlation of their recent
/// prediction tracks and keeps only cluster representatives, combined with
/// SWE (diversity-enhancing selection).
#[derive(Debug, Clone)]
pub struct Clus {
    window: SlidingErrorWindow,
    n_clusters: usize,
    seed: u64,
}

impl Clus {
    /// Creates a Clus combiner with `n_clusters` clusters.
    pub fn new(window: usize, n_clusters: usize, seed: u64) -> Self {
        Clus {
            window: SlidingErrorWindow::new(window),
            n_clusters: n_clusters.max(1),
            seed,
        }
    }
}

impl Combiner for Clus {
    fn name(&self) -> &str {
        "Clus"
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        for (p, &a) in preds.iter().zip(actuals.iter()) {
            self.window.push(p, a);
        }
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        let Some(errors) = self.window.model_rmse(m) else {
            return vec![1.0 / m.max(1) as f64; m];
        };
        if self.window.len() < 3 {
            return vec![1.0 / m.max(1) as f64; m];
        }
        let tracks: Vec<Vec<f64>> = (0..m).map(|i| self.window.model_track(i)).collect();
        let mut rng = DetRng::seed_from_u64(self.seed);
        let reps = cluster_representatives(&tracks, &errors, self.n_clusters, &mut rng);
        subset_swe_weights(&errors, &reps, m)
    }

    fn observe(&mut self, preds: &[f64], actual: f64) {
        self.window.push(preds, actual);
    }
}

/// **DEMSC** — drift-aware dynamic ensemble-member selection: Top.sel
/// pruning followed by Clus diversity enhancement produces a committee that
/// is combined with SWE. The committee is only re-computed when a
/// Page–Hinkley test on the ensemble's absolute error signals concept
/// drift — the "informed update" that makes DEMSC's online phase more
/// expensive than EA-DRL's (Table III).
#[derive(Debug, Clone)]
pub struct Demsc {
    window: SlidingErrorWindow,
    fraction: f64,
    n_clusters: usize,
    seed: u64,
    detector: PageHinkley,
    committee: Vec<usize>,
    /// Number of committee re-selections performed (drift count + 1).
    reselections: usize,
}

impl Demsc {
    /// Creates a DEMSC combiner: keep `fraction` of the pool, cluster the
    /// survivors into `n_clusters` groups.
    pub fn new(window: usize, fraction: f64, n_clusters: usize, seed: u64) -> Self {
        Demsc {
            window: SlidingErrorWindow::new(window),
            fraction: fraction.clamp(0.01, 1.0),
            n_clusters: n_clusters.max(1),
            seed,
            detector: PageHinkley::new(0.05, 8.0),
            committee: Vec::new(),
            reselections: 0,
        }
    }

    /// How many times the committee has been (re-)selected.
    pub fn reselections(&self) -> usize {
        self.reselections
    }

    fn reselect(&mut self, m: usize) {
        let Some(errors) = self.window.model_rmse(m) else {
            return;
        };
        // Stage 1 — Top.sel pruning.
        let count = ((m as f64 * self.fraction).ceil() as usize).clamp(1, m);
        let top = top_indices(&errors, count);
        // Stage 2 — Clus diversity enhancement among the survivors.
        let tracks: Vec<Vec<f64>> = top.iter().map(|&i| self.window.model_track(i)).collect();
        let sub_errors: Vec<f64> = top.iter().map(|&i| errors[i]).collect();
        let mut rng = DetRng::seed_from_u64(self.seed.wrapping_add(self.reselections as u64));
        let reps_local = cluster_representatives(&tracks, &sub_errors, self.n_clusters, &mut rng);
        self.committee = reps_local.into_iter().map(|local| top[local]).collect();
        self.reselections += 1;
    }
}

impl Combiner for Demsc {
    fn name(&self) -> &str {
        "DEMSC"
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        for (p, &a) in preds.iter().zip(actuals.iter()) {
            self.window.push(p, a);
        }
        if let Some(first) = preds.first() {
            self.reselect(first.len());
        }
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        if self.committee.is_empty() {
            self.reselect(m);
        }
        match self.window.model_rmse(m) {
            Some(errors) if !self.committee.is_empty() => {
                subset_swe_weights(&errors, &self.committee.clone(), m)
            }
            _ => vec![1.0 / m.max(1) as f64; m],
        }
    }

    fn observe(&mut self, preds: &[f64], actual: f64) {
        let m = preds.len();
        // Ensemble error with the current committee, fed to the detector.
        let w = self.weights(m);
        let forecast: f64 = w.iter().zip(preds.iter()).map(|(w, p)| w * p).sum();
        self.window.push(preds, actual);
        if self.detector.update((forecast - actual).abs()) {
            self.reselect(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four models: 0 accurate, 1 accurate-but-correlated-with-0, 2
    /// mediocre, 3 terrible.
    fn feed(c: &mut dyn Combiner, steps: usize) {
        for t in 0..steps {
            let y = (t as f64 / 5.0).sin();
            c.observe(&[y + 0.05, y + 0.06, y + 0.5, y + 5.0], y);
        }
    }

    #[test]
    fn top_sel_zeroes_out_bad_models() {
        let mut ts = TopSel::new(10, 0.5);
        feed(&mut ts, 15);
        let w = ts.weights(4);
        assert_eq!(w.len(), 4);
        assert!(w[3] == 0.0, "worst model must be pruned: {w:?}");
        assert!(w[0] > 0.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_sel_uniform_without_history() {
        let mut ts = TopSel::new(10, 0.5);
        assert_eq!(ts.weights(4), vec![0.25; 4]);
    }

    #[test]
    fn clus_selects_representatives() {
        let mut cl = Clus::new(12, 2, 7);
        feed(&mut cl, 12);
        let w = cl.weights(4);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // With 2 clusters over 4 models, at most 2 get non-zero weight.
        let nonzero = w.iter().filter(|&&x| x > 0.0).count();
        assert!(nonzero <= 2, "w = {w:?}");
    }

    #[test]
    fn correlation_distance_extremes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0]; // perfectly correlated
        let c = [4.0, 3.0, 2.0, 1.0]; // perfectly anti-correlated
        assert!(correlation_distance(&a, &b) < 1e-9);
        assert!((correlation_distance(&a, &c) - 2.0).abs() < 1e-9);
        assert_eq!(correlation_distance(&a, &[1.0, 1.0, 1.0, 1.0]), 1.0);
    }

    #[test]
    fn demsc_forms_committee_and_weights_sum_to_one() {
        let mut d = Demsc::new(10, 0.5, 2, 3);
        feed(&mut d, 20);
        let w = d.weights(4);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(d.reselections() >= 1);
        // The terrible model never makes the committee.
        assert_eq!(w[3], 0.0, "w = {w:?}");
    }

    #[test]
    fn demsc_reselects_on_drift() {
        let mut d = Demsc::new(10, 0.5, 2, 3);
        // Stable phase: model 0 is great.
        for t in 0..40 {
            let y = t as f64 * 0.1;
            d.observe(&[y + 0.01, y + 0.4, y + 0.5, y + 0.6], y);
        }
        let before = d.reselections();
        // Drift: the committee's champion collapses, error jumps.
        for t in 0..60 {
            let y = t as f64 * 0.1;
            d.observe(&[y + 12.0, y + 0.02, y + 0.5, y + 0.6], y);
        }
        assert!(
            d.reselections() > before,
            "drift did not trigger re-selection"
        );
        // And the weights follow the new champion.
        let w = d.weights(4);
        assert!(w[1] > w[0], "w = {w:?}");
    }
}
