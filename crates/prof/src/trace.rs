//! Trace loading: JSONL text → events, tolerant of real-world damage.
//!
//! A trace from a killed process can end in a half-written line, and a
//! `RingSink`-captured trace can carry an `obs.ring.dropped` truncation
//! marker. Loading never fails on those: damaged trailing lines are
//! counted, the marker is surfaced, and analysis proceeds on what
//! survives — a profiler that refuses truncated traces can't profile
//! crashes.

use eadrl_obs::Event;

/// A loaded trace: parsed events plus everything the loader had to
/// tolerate to get them.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Parsed events, in file order.
    pub events: Vec<Event>,
    /// Lines that failed to parse (line number, error). A single
    /// *trailing* bad line is the signature of a killed writer; bad
    /// lines elsewhere usually mean the file isn't a trace at all.
    pub bad_lines: Vec<(usize, String)>,
    /// Count carried by an `obs.ring.dropped` marker, if present: the
    /// trace's own record that its ring buffer evicted events.
    pub ring_dropped: Option<u64>,
}

impl Trace {
    /// Parses a trace from JSONL text. Never fails: unparseable lines
    /// land in [`Trace::bad_lines`].
    pub fn from_jsonl(text: &str) -> Trace {
        let mut trace = Trace::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Event::from_json_line(line) {
                Ok(event) => {
                    if event.name == "obs.ring.dropped" {
                        let count = match event.get("count") {
                            Some(eadrl_obs::Value::U64(c)) => *c,
                            Some(eadrl_obs::Value::F64(c)) => *c as u64,
                            _ => 0,
                        };
                        trace.ring_dropped =
                            Some(trace.ring_dropped.unwrap_or(0).saturating_add(count));
                    }
                    trace.events.push(event);
                }
                Err(err) => trace.bad_lines.push((lineno + 1, err)),
            }
        }
        trace
    }

    /// Loads a trace from a file.
    ///
    /// # Errors
    /// When the file cannot be read (damaged *content* is tolerated and
    /// reported through [`Trace::bad_lines`] instead).
    pub fn load(path: &std::path::Path) -> Result<Trace, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Ok(Trace::from_jsonl(&text))
    }

    /// True when the trace is self-described as incomplete: ring
    /// overflow or damaged lines.
    pub fn is_truncated(&self) -> bool {
        self.ring_dropped.is_some() || !self.bad_lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadrl_obs::{EventKind, Level};

    #[test]
    fn damaged_trailing_line_is_tolerated() {
        let good = Event::new("a.b", EventKind::Span, Level::Info)
            .field("duration_us", 5u64)
            .to_json_line();
        let text = format!("{good}\n{good}\n{{\"ts\": 12, \"na");
        let trace = Trace::from_jsonl(&text);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.bad_lines.len(), 1);
        assert_eq!(trace.bad_lines[0].0, 3);
        assert!(trace.is_truncated());
    }

    #[test]
    fn ring_dropped_marker_is_surfaced() {
        let marker = Event::new("obs.ring.dropped", EventKind::Event, Level::Warn)
            .field("count", 17u64)
            .to_json_line();
        let trace = Trace::from_jsonl(&marker);
        assert_eq!(trace.ring_dropped, Some(17));
        assert!(trace.is_truncated());
    }

    #[test]
    fn empty_and_blank_input_yield_empty_trace() {
        assert!(Trace::from_jsonl("").events.is_empty());
        let trace = Trace::from_jsonl("\n  \n\n");
        assert!(trace.events.is_empty() && trace.bad_lines.is_empty());
        assert!(!trace.is_truncated());
    }
}
