//! Telemetry-overhead benchmark: the batched DDPG update workload run
//! under three observability settings —
//!
//! * `off`         — level `None`: every span/event call is a level
//!   check and nothing else (the production default);
//! * `info_coarse` — level `Info`: fit/episode-grained spans only; the
//!   per-update phase spans stay disabled;
//! * `trace_full`  — level `Trace`: full profiling instrumentation
//!   (DDPG phase spans + nn kernel spans), written through a
//!   [`JsonlSink`] backed by `io::sink()` so the cost measured is
//!   event construction + serialization, not disk.
//!
//! The interesting numbers are the ratios: `info_coarse / off` is the
//! cost of leaving coarse telemetry on in production, `trace_full /
//! off` is the price of a full profiling run. Committed as
//! `BENCH_obs.json` and documented in EXPERIMENTS.md.
//!
//! Flags: `--quick` (CI smoke budget), `--json` (stdout report),
//! `--out <path>` (write the JSON document, workspace-root-relative).

use eadrl_bench::harness::{Harness, Summary};
use eadrl_bench::{json_output, print_json_report};
use eadrl_obs::{JsonlSink, Level};
use eadrl_rl::{ActionSquash, DdpgAgent, DdpgConfig, SamplingStrategy, Transition, UpdatePath};
use eadrl_rng::DetRng;
use std::hint::black_box;

const STATE_DIM: usize = 10;
const ACTION_DIM: usize = 10;

/// Consecutive updates timed per sample (fresh seeded agent each
/// sample, so every sample does identical deterministic work).
const UPDATES_PER_RUN: usize = 50;

fn seeded_agent() -> DdpgAgent {
    let mut agent = DdpgAgent::new(
        STATE_DIM,
        ACTION_DIM,
        DdpgConfig {
            sampling: SamplingStrategy::Uniform,
            batch_size: 64,
            hidden: vec![32, 32],
            squash: ActionSquash::BoundedSoftmax { scale: 6.0 },
            seed: 42,
            update_path: UpdatePath::Batched,
            ..Default::default()
        },
    );
    let mut rng = DetRng::seed_from_u64(99);
    for i in 0..256 {
        let state: Vec<f64> = (0..STATE_DIM)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let next_state: Vec<f64> = (0..STATE_DIM)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let mut action: Vec<f64> = (0..ACTION_DIM)
            .map(|_| rng.random_range(0.0..1.0))
            .collect();
        let sum: f64 = action.iter().sum();
        for a in action.iter_mut() {
            *a /= sum;
        }
        agent.observe(Transition {
            state,
            action,
            reward: rng.random_range(-1.0..1.0),
            next_state,
            done: i % 9 == 0,
        });
    }
    agent
}

/// Benches `UPDATES_PER_RUN` batched updates under one telemetry mode.
/// The level (and, for enabled levels, a null-device JSONL sink) is
/// installed before measuring and reset afterwards.
fn bench_modes(c: &mut Harness) -> Vec<(String, Summary)> {
    let modes: [(&str, Option<Level>); 3] = [
        ("off", None),
        ("info_coarse", Some(Level::Info)),
        ("trace_full", Some(Level::Trace)),
    ];
    let mut group = c.benchmark_group("ddpg_update_batch64_telemetry");
    for (label, level) in modes {
        group.bench_function(label, |b| {
            eadrl_obs::set_sink(std::sync::Arc::new(JsonlSink::new(Box::new(
                std::io::sink(),
            ))));
            eadrl_obs::set_level(level);
            b.iter_batched(
                || seeded_agent(),
                |mut agent| {
                    for _ in 0..UPDATES_PER_RUN {
                        agent.update();
                    }
                    black_box(agent.updates())
                },
            );
            eadrl_obs::set_level(None);
        });
    }
    group.finish()
}

fn out_path() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let raw = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))?;
    let path = std::path::PathBuf::from(raw);
    if path.is_absolute() {
        return Some(path);
    }
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => Some(std::path::Path::new(&dir).join("../..").join(path)),
        Err(_) => Some(path),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut h = if quick {
        Harness::default()
            .measurement_time(std::time::Duration::from_millis(300))
            .warm_up_time(std::time::Duration::from_millis(100))
            .sample_size(10)
    } else {
        Harness::default()
            .measurement_time(std::time::Duration::from_secs(2))
            .warm_up_time(std::time::Duration::from_millis(500))
            .sample_size(20)
    };

    let summaries = bench_modes(&mut h);
    let median_of = |id: &str| -> f64 {
        summaries
            .iter()
            .find(|(name, _)| name == id)
            .map_or(f64::NAN, |(_, s)| s.median_ns)
    };
    let off = median_of("off");
    let info = median_of("info_coarse");
    let trace = median_of("trace_full");
    let per_update = |total: f64| total / UPDATES_PER_RUN as f64;
    let fields: Vec<(String, eadrl_obs::json::JsonValue)> = vec![
        ("batch_size".to_string(), 64usize.into()),
        ("updates_per_run".to_string(), UPDATES_PER_RUN.into()),
        (
            "off_median_ns_per_update".to_string(),
            per_update(off).into(),
        ),
        (
            "info_coarse_median_ns_per_update".to_string(),
            per_update(info).into(),
        ),
        (
            "trace_full_median_ns_per_update".to_string(),
            per_update(trace).into(),
        ),
        ("info_over_off_ratio".to_string(), (info / off).into()),
        ("trace_over_off_ratio".to_string(), (trace / off).into()),
    ];

    let doc = {
        let mut obj: Vec<(String, eadrl_obs::json::JsonValue)> =
            vec![("report".to_string(), "obs_overhead_bench".into())];
        obj.extend(fields.iter().cloned());
        eadrl_obs::json::JsonValue::Obj(obj).to_json()
    };
    if let Some(path) = out_path() {
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
    if json_output() {
        print_json_report("obs_overhead_bench", fields);
    }
}
