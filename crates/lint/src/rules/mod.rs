//! The pluggable rule engine.
//!
//! A rule inspects one [`SourceFile`] and pushes [`Finding`]s; the
//! engine applies suppression markers afterwards, so rules never need to
//! know about `eadrl-lint: allow(...)`. Adding a rule is: implement
//! [`Rule`], add it to [`default_rules`], document it in
//! `CONTRIBUTING.md`, and add a fixture to `tests/fixtures/`.

pub mod determinism;
pub mod doc_header;
pub mod float_eq;
pub mod no_unwrap;
pub mod obs_schema;

use crate::source::SourceFile;

pub use obs_schema::ObsSchema;

/// The pseudo-rule name used for malformed suppression markers. Not
/// itself suppressible.
pub const SUPPRESSION_RULE: &str = "suppression";

/// Deep-pass rule: an unallowed panic escape hatch is transitively
/// reachable from a pub library fn (see `crate::deep`).
pub const PANIC_RULE: &str = "panic-reachable";
/// Deep-pass rule: a `DESIGN.md` hot-path fn transitively reaches an
/// allocating call.
pub const HOT_RULE: &str = "hot-path-alloc";
/// Deep-pass rule: a nondeterminism source is reachable from a
/// `fit`/`predict` path without passing the obs trace gate.
pub const TAINT_RULE: &str = "determinism-taint";
/// Deep-pass rule: a suppression marker that no longer suppresses any
/// finding. Not itself suppressible.
pub const STALE_RULE: &str = "stale-allow";

/// Rules evaluated by the call-graph passes rather than per line —
/// `allow(...)` may name them (at line or fn granularity), so the
/// marker validator accepts them alongside the line rules.
pub const DEEP_RULES: &[&str] = &[PANIC_RULE, HOT_RULE, TAINT_RULE];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// File, workspace-relative.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the defect.
    pub message: String,
}

/// A single lint rule.
pub trait Rule {
    /// Stable kebab-case rule name — what `allow(...)` refers to.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Inspects one file. Rules do their own path scoping so the engine
    /// stays policy-free.
    fn check(&self, file: &SourceFile, ctx: &LintContext, out: &mut Vec<Finding>);
}

/// Shared context handed to every rule.
#[derive(Debug, Default)]
pub struct LintContext {
    /// The obs event-name schema parsed from `DESIGN.md`, when available.
    pub schema: Option<ObsSchema>,
}

/// The rule set shipped with the workspace.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_unwrap::NoUnwrapInLib),
        Box::new(float_eq::NoFloatEq),
        Box::new(determinism::Determinism),
        Box::new(obs_schema::ObsEventSchema),
        Box::new(doc_header::DocHeader),
    ]
}

/// The outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that must be fixed (or suppressed with justification).
    pub findings: Vec<Finding>,
    /// Findings silenced by a well-formed `allow(...)` marker.
    pub suppressed: Vec<Finding>,
    /// Number of files inspected.
    pub files: usize,
}

/// Lints one file's source text through `rules`, applying suppression
/// markers and validating the markers themselves.
pub fn lint_source(
    rules: &[Box<dyn Rule>],
    ctx: &LintContext,
    rel_path: &str,
    text: &str,
) -> (Vec<Finding>, Vec<Finding>) {
    lint_file(rules, ctx, &SourceFile::parse(rel_path, text))
}

/// Like [`lint_source`] but over an already-parsed file, so callers that
/// also run the deep passes lex each file exactly once.
pub fn lint_file(
    rules: &[Box<dyn Rule>],
    ctx: &LintContext,
    file: &SourceFile,
) -> (Vec<Finding>, Vec<Finding>) {
    let mut raw = Vec::new();
    for rule in rules {
        rule.check(file, ctx, &mut raw);
    }
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for finding in raw {
        if file.allows(finding.line, finding.rule) {
            suppressed.push(finding);
        } else {
            active.push(finding);
        }
    }
    // Validate the markers themselves: a suppression that names an
    // unknown rule or carries no justification is a finding, so stale or
    // lazy `allow(...)`s cannot silently accumulate.
    let mut known: Vec<&str> = rules.iter().map(|r| r.name()).collect();
    known.extend(DEEP_RULES);
    for s in &file.suppressions {
        if s.rules.is_empty() {
            active.push(Finding {
                rule: SUPPRESSION_RULE,
                path: file.rel_path.clone(),
                line: s.marker_line,
                message: "malformed eadrl-lint marker: expected `eadrl-lint: allow(<rule>, …): <justification>`".to_string(),
            });
            continue;
        }
        for r in &s.rules {
            if !known.contains(&r.as_str()) {
                active.push(Finding {
                    rule: SUPPRESSION_RULE,
                    path: file.rel_path.clone(),
                    line: s.marker_line,
                    message: format!("allow() names unknown rule `{r}`"),
                });
            }
        }
        if s.justification.len() < 3 {
            active.push(Finding {
                rule: SUPPRESSION_RULE,
                path: file.rel_path.clone(),
                line: s.marker_line,
                message: format!(
                    "allow({}) needs a trailing justification, e.g. `// eadrl-lint: allow({}): exact zero test is deliberate`",
                    s.rules.join(", "),
                    s.rules.join(", "),
                ),
            });
        }
    }
    active.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    (active, suppressed)
}

/// The library crates whose non-test code must be panic-free and
/// float-eq-clean: everything that can sit on a forecast-producing path.
pub const RESULT_CRATES: &[&str] = &[
    "crates/rng/src/",
    "crates/linalg/src/",
    "crates/nn/src/",
    "crates/models/src/",
    "crates/rl/src/",
    "crates/core/src/",
    "crates/eval/src/",
    "crates/timeseries/src/",
    "crates/par/src/",
];
