//! Property suite for the deterministic thread pool: execution-once,
//! order preservation under arbitrary chunking, edge cases, and the
//! forked-`DetRng` substream independence law that makes stochastic
//! tasks thread-count-independent.

use eadrl_par::{par_map_indexed_with, par_map_with};
use eadrl_ptest::prelude::*;
use eadrl_rng::DetRng;
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every item is executed exactly once, at every thread count.
    #[test]
    fn every_item_executes_exactly_once(
        n in 0usize..60,
        threads in 1usize..10,
    ) {
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        let out = par_map_with(threads, items, |i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        prop_assert!(out.is_ok());
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::SeqCst), 1, "item {} ran {} times", i, c.load(Ordering::SeqCst));
        }
    }

    /// Merge order equals input order regardless of how the batch is
    /// chunked: any two thread counts produce identical output, and
    /// both equal the plain serial map.
    #[test]
    fn merge_order_is_input_order_for_any_chunking(
        values in prop::collection::vec(-1e6f64..1e6, 0..50),
        threads_a in 1usize..9,
        threads_b in 1usize..9,
    ) {
        let serial: Vec<u64> = values.iter().map(|v| (v * 3.0 + 1.0).to_bits()).collect();
        let a = par_map_with(threads_a, values.clone(), |v| (v * 3.0 + 1.0).to_bits());
        let b = par_map_with(threads_b, values.clone(), |v| (v * 3.0 + 1.0).to_bits());
        prop_assert_eq!(a.as_deref(), Ok(serial.as_slice()));
        prop_assert_eq!(b.as_deref(), Ok(serial.as_slice()));
    }

    /// Empty input and single items are well-defined at every thread
    /// count (the classic chunking off-by-one habitat).
    #[test]
    fn empty_and_singleton_edge_cases(threads in 1usize..12) {
        let empty = par_map_with(threads, Vec::<u32>::new(), |x| x);
        prop_assert_eq!(empty, Ok(vec![]));
        let one = par_map_with(threads, vec![7u32], |x| x + 1);
        prop_assert_eq!(one, Ok(vec![8]));
    }

    /// Substream independence: a stochastic task that derives its RNG
    /// from the input index draws the identical stream no matter where
    /// the chunk boundaries fall. This is the law that keeps the Bayes
    /// sign test (per-chain substreams) thread-count-independent.
    #[test]
    fn substream_draws_are_chunking_independent(
        seed in 0u64..1_000_000,
        n in 1usize..40,
        threads_a in 1usize..9,
        threads_b in 1usize..9,
    ) {
        let parent = DetRng::seed_from_u64(seed);
        let draw = |i: usize, _item: ()| -> Vec<u64> {
            let mut rng = parent.substream(i as u64);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        let a = par_map_indexed_with(threads_a, vec![(); n], draw);
        let b = par_map_indexed_with(threads_b, vec![(); n], draw);
        prop_assert!(a.is_ok() && b.is_ok());
        prop_assert_eq!(a, b);
    }

    /// The substream mapping is a pure function of (parent state,
    /// index): forking more substreams, or in a different order, never
    /// perturbs an existing one — so moving a chunk boundary cannot
    /// change any item's stream.
    #[test]
    fn substream_is_unperturbed_by_sibling_forks(
        seed in 0u64..1_000_000,
        index in 0u64..64,
        siblings in prop::collection::vec(0u64..64, 0..8),
    ) {
        let parent = DetRng::seed_from_u64(seed);
        let mut clean = parent.substream(index);
        for s in &siblings {
            let _ = parent.substream(*s);
        }
        let mut after = parent.substream(index);
        for _ in 0..8 {
            prop_assert_eq!(clean.next_u64(), after.next_u64());
        }
    }
}
