//! ARIMA(p, d, q) fitted with the Hannan–Rissanen two-stage procedure.

use crate::forecaster::{fallback_forecast, Forecaster, ModelError};
use eadrl_linalg::{ridge, Matrix};
use eadrl_timeseries::transform::difference;

/// An ARIMA(p, d, q) forecaster.
///
/// Fitting follows Hannan–Rissanen:
///
/// 1. difference the series `d` times;
/// 2. fit a long autoregression by least squares to estimate the
///    innovation sequence;
/// 3. regress each value on its `p` lags and `q` lagged innovations.
///
/// One-step forecasting filters the fitted model over the observed history
/// to reconstruct the innovations, predicts the next differenced value and
/// integrates back `d` times.
#[derive(Debug, Clone)]
pub struct Arima {
    name: String,
    p: usize,
    d: usize,
    q: usize,
    /// `[intercept, phi_1..phi_p, theta_1..theta_q]`.
    coef: Vec<f64>,
    /// Winsorization bound for filtered innovations (set at fit time).
    innovation_cap: f64,
    fitted: bool,
}

impl Arima {
    /// Creates an unfitted ARIMA(p, d, q).
    ///
    /// # Panics
    /// Panics when `p + q == 0` (a pure-integration model forecasts
    /// nothing) or `d > 2`.
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        assert!(p + q > 0, "ARIMA requires p + q > 0");
        assert!(d <= 2, "ARIMA supports d <= 2");
        Arima {
            name: format!("ARIMA({p},{d},{q})"),
            p,
            d,
            q,
            coef: Vec::new(),
            innovation_cap: f64::INFINITY,
            fitted: false,
        }
    }

    /// `(p, d, q)` orders.
    pub fn orders(&self) -> (usize, usize, usize) {
        (self.p, self.d, self.q)
    }

    /// Automatic order selection, the spirit of R's `auto.arima`:
    ///
    /// * `d ∈ {0, 1}` is chosen by a unit-root heuristic: difference once
    ///   when the lag-1 autocorrelation exceeds 0.9 (trend / random-walk
    ///   signature),
    /// * `(p, q)` over `1..=max_p × 0..=max_q` by one-step SSE on the last
    ///   25 % of `series` (fit on the first 75 %).
    ///
    /// Returns the *fitted* best model (refit on the full series).
    pub fn auto(series: &[f64], max_p: usize, max_q: usize) -> Result<Arima, ModelError> {
        let acf1 = eadrl_timeseries::stats::acf(series, 1)
            .get(1)
            .copied()
            .unwrap_or(0.0);
        let d = usize::from(acf1 > 0.9);
        let cut = (series.len() as f64 * 0.75).round() as usize;
        let (fit_part, val_part) = series.split_at(cut.min(series.len().saturating_sub(2)));

        let mut best: Option<(f64, usize, usize)> = None;
        for p in 1..=max_p.max(1) {
            for q in 0..=max_q {
                let mut candidate = Arima::new(p, d, q);
                if candidate.fit(fit_part).is_err() {
                    continue;
                }
                // Rolling one-step SSE over the validation tail.
                let mut history = fit_part.to_vec();
                let mut sse = 0.0;
                for &actual in val_part {
                    let e = candidate.predict_next(&history) - actual;
                    sse += e * e;
                    history.push(actual);
                }
                if best.is_none_or(|(b, _, _)| sse < b) {
                    best = Some((sse, p, q));
                }
            }
        }
        let (_, p, q) = best.ok_or(ModelError::SeriesTooShort {
            needed: 40,
            got: series.len(),
        })?;
        let mut chosen = Arima::new(p, d, q);
        chosen.fit(series)?;
        Ok(chosen)
    }

    fn diff_all(&self, series: &[f64]) -> Vec<f64> {
        let mut w = series.to_vec();
        for _ in 0..self.d {
            w = difference(&w, 1);
        }
        w
    }

    /// Long-AR residual estimation (stage 1 of Hannan–Rissanen).
    fn long_ar_residuals(w: &[f64], order: usize) -> Option<Vec<f64>> {
        if w.len() <= order + 2 {
            return None;
        }
        let rows: Vec<Vec<f64>> = (order..w.len())
            .map(|t| {
                let mut r = Vec::with_capacity(order + 1);
                r.push(1.0);
                for lag in 1..=order {
                    r.push(w[t - lag]);
                }
                r
            })
            .collect();
        let targets: Vec<f64> = w[order..].to_vec();
        let x = Matrix::from_rows(&rows).ok()?;
        let beta = ridge(&x, &targets, 1e-8).ok()?;
        // Residuals aligned to w (zeros for the first `order` entries).
        let mut resid = vec![0.0; w.len()];
        for (row_idx, t) in (order..w.len()).enumerate() {
            let pred: f64 = rows[row_idx]
                .iter()
                .zip(beta.iter())
                .map(|(a, b)| a * b)
                .sum();
            resid[t] = w[t] - pred;
        }
        Some(resid)
    }

    /// Filters the fitted ARMA over `w`, returning the innovation sequence.
    fn filter_innovations(&self, w: &[f64]) -> Vec<f64> {
        let mut e = vec![0.0; w.len()];
        let start = self.p;
        for t in start..w.len() {
            let mut pred = self.coef[0];
            for lag in 1..=self.p {
                pred += self.coef[lag] * w[t - lag];
            }
            for lag in 1..=self.q {
                if t >= lag {
                    pred += self.coef[self.p + lag] * e[t - lag];
                }
            }
            e[t] = (w[t] - pred).clamp(-self.innovation_cap, self.innovation_cap);
        }
        e
    }
}

impl Forecaster for Arima {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, series: &[f64]) -> Result<(), ModelError> {
        let long_order = (self.p + self.q + 4).max(8);
        let needed = self.d + long_order + self.p.max(self.q) + 8;
        if series.len() < needed {
            return Err(ModelError::SeriesTooShort {
                needed,
                got: series.len(),
            });
        }
        let w = self.diff_all(series);
        let resid = Self::long_ar_residuals(&w, long_order).ok_or(ModelError::Numerical {
            context: "long-AR stage failed".into(),
        })?;

        // Stage 2: regress w_t on p lags of w and q lags of resid.
        let start = long_order.max(self.p).max(self.q);
        let rows: Vec<Vec<f64>> = (start..w.len())
            .map(|t| {
                let mut r = Vec::with_capacity(1 + self.p + self.q);
                r.push(1.0);
                for lag in 1..=self.p {
                    r.push(w[t - lag]);
                }
                for lag in 1..=self.q {
                    r.push(resid[t - lag]);
                }
                r
            })
            .collect();
        let targets: Vec<f64> = w[start..].to_vec();
        let x = Matrix::from_rows(&rows).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        self.coef = ridge(&x, &targets, 1e-8).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        // Enforce (approximate) invertibility of the MA part: the
        // innovation filter in `filter_innovations` recurses on its own
        // output, so |θ| ≥ 1 diverges exponentially over long histories.
        // R's arima() enforces this via constrained optimization; clamping
        // is the lightweight equivalent.
        for theta in self.coef[1 + self.p..].iter_mut() {
            *theta = theta.clamp(-0.9, 0.9);
        }
        // Innovation cap for the filter: a few sigmas of the differenced
        // series, so a mis-specified model stays bounded.
        let w_mean = w.iter().sum::<f64>() / w.len() as f64;
        let w_std =
            (w.iter().map(|v| (v - w_mean) * (v - w_mean)).sum::<f64>() / w.len() as f64).sqrt();
        self.innovation_cap = (6.0 * w_std).max(1e-6);
        self.fitted = true;
        Ok(())
    }

    fn predict_next(&self, history: &[f64]) -> f64 {
        if !self.fitted || history.len() < self.d + self.p.max(self.q) + 2 {
            return fallback_forecast(history);
        }
        let w = self.diff_all(history);
        if w.len() < self.p.max(1) {
            return fallback_forecast(history);
        }
        let e = self.filter_innovations(&w);
        // One-step-ahead forecast of the differenced series.
        let t = w.len();
        let mut pred = self.coef[0];
        for lag in 1..=self.p {
            if t >= lag {
                pred += self.coef[lag] * w[t - lag];
            }
        }
        for lag in 1..=self.q {
            if t >= lag {
                pred += self.coef[self.p + lag] * e[t - lag];
            }
        }
        // Integrate back d times: forecast of x_{t+1} adds the last values
        // of each integration level.
        let mut levels: Vec<f64> = Vec::with_capacity(self.d);
        let mut cur = history.to_vec();
        for _ in 0..self.d {
            let Some(&last) = cur.last() else { break };
            levels.push(last);
            cur = difference(&cur, 1);
        }
        let mut out = pred;
        for &lvl in levels.iter().rev() {
            out += lvl;
        }
        if out.is_finite() {
            out
        } else {
            fallback_forecast(history)
        }
    }

    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1(phi: f64, c: f64, n: usize, seed: u64) -> Vec<f64> {
        // Deterministic LCG noise keeps the test hermetic.
        let mut state = seed;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut s = vec![c / (1.0 - phi)];
        for t in 1..n {
            let prev = s[t - 1];
            s.push(c + phi * prev + 0.3 * noise());
        }
        s
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let s = ar1(0.7, 1.0, 600, 42);
        let mut m = Arima::new(1, 0, 0);
        m.fit(&s).unwrap();
        assert!((m.coef[1] - 0.7).abs() < 0.1, "phi = {}", m.coef[1]);
    }

    #[test]
    fn forecasts_ar1_one_step() {
        let s = ar1(0.8, 0.5, 500, 7);
        let mut m = Arima::new(1, 0, 0);
        m.fit(&s).unwrap();
        let pred = m.predict_next(&s);
        let expected = m.coef[0] + m.coef[1] * s[s.len() - 1];
        assert!((pred - expected).abs() < 1e-9);
    }

    #[test]
    fn differencing_handles_linear_trend() {
        // x_t = 2t + AR noise: ARIMA(1,1,0) should forecast the next step
        // close to last + 2.
        let base = ar1(0.3, 0.0, 300, 9);
        let s: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(t, v)| 2.0 * t as f64 + v)
            .collect();
        let mut m = Arima::new(1, 1, 0);
        m.fit(&s).unwrap();
        let pred = m.predict_next(&s);
        let naive_trend = s[s.len() - 1] + 2.0;
        assert!(
            (pred - naive_trend).abs() < 1.0,
            "pred {pred} vs {naive_trend}"
        );
    }

    #[test]
    fn ma_component_is_fitted() {
        let s = ar1(0.5, 0.2, 500, 3);
        let mut m = Arima::new(1, 0, 1);
        m.fit(&s).unwrap();
        assert_eq!(m.coef.len(), 3);
        assert!(m.predict_next(&s).is_finite());
    }

    #[test]
    fn short_series_is_error_and_fallback_works() {
        let mut m = Arima::new(2, 1, 1);
        assert!(m.fit(&[1.0, 2.0, 3.0]).is_err());
        // Unfitted: falls back to last value.
        assert_eq!(m.predict_next(&[5.0, 6.0]), 6.0);
    }

    #[test]
    #[should_panic(expected = "p + q > 0")]
    fn degenerate_orders_panic() {
        let _ = Arima::new(0, 1, 0);
    }

    #[test]
    fn orders_accessor() {
        assert_eq!(Arima::new(2, 1, 1).orders(), (2, 1, 1));
    }

    #[test]
    fn fitted_arima_leaves_white_residuals_on_ar_data() {
        use eadrl_timeseries::stats::ljung_box;
        let s = ar1(0.8, 0.5, 600, 13);
        let mut m = Arima::new(1, 0, 0);
        m.fit(&s).unwrap();
        // One-step rolling residuals over the second half.
        let residuals: Vec<f64> = (300..s.len())
            .map(|t| s[t] - m.predict_next(&s[..t]))
            .collect();
        let q = ljung_box(&residuals, 10).unwrap();
        // Raw series is strongly autocorrelated; residuals should not be.
        let q_raw = ljung_box(&s[300..], 10).unwrap();
        assert!(q < 0.2 * q_raw, "residual Q {q} vs raw Q {q_raw}");
    }

    #[test]
    fn auto_picks_no_differencing_for_stationary_data() {
        let s = ar1(0.6, 1.0, 400, 21);
        let m = Arima::auto(&s, 3, 1).unwrap();
        let (p, d, _q) = m.orders();
        assert_eq!(d, 0, "stationary AR(1) needs no differencing");
        assert!(p >= 1);
        assert!(m.predict_next(&s).is_finite());
    }

    #[test]
    fn auto_differences_trending_data() {
        let base = ar1(0.3, 0.0, 300, 5);
        let s: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(t, v)| 3.0 * t as f64 + v)
            .collect();
        let m = Arima::auto(&s, 2, 1).unwrap();
        assert_eq!(m.orders().1, 1, "strong trend should be differenced");
        // Forecast continues the trend.
        let pred = m.predict_next(&s);
        assert!((pred - (s[s.len() - 1] + 3.0)).abs() < 2.0, "pred {pred}");
    }

    #[test]
    fn auto_on_tiny_series_errors() {
        assert!(Arima::auto(&[1.0; 10], 2, 1).is_err());
    }
}
