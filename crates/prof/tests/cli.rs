//! End-to-end tests of the `obs_report` binary: the exact invocations
//! CI runs, asserted on exit codes and output. The diff-gate fixtures
//! (`baseline.jsonl`, a synthetic 2× slowdown in `slow2x.jsonl`) are
//! the same files the CI workflow points the gate at.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

fn obs_report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obs_report"))
        .args(args)
        .output()
        .expect("obs_report spawns")
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn diff_gate_passes_baseline_against_itself() {
    let baseline = fixture("baseline.jsonl");
    let output = obs_report(&["diff", &baseline, &baseline, "--threshold", "1.15"]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout_of(&output).contains("no regressions"));
}

#[test]
fn diff_gate_fails_the_synthetic_2x_slowdown() {
    let output = obs_report(&[
        "diff",
        &fixture("baseline.jsonl"),
        &fixture("slow2x.jsonl"),
        "--threshold",
        "1.15",
    ]);
    assert_eq!(output.status.code(), Some(1), "regression must exit 1");
    let text = stdout_of(&output);
    assert!(text.contains("REGRESSED"), "stdout: {text}");
    assert!(text.contains("2.00x"), "worst ratio is the 2x: {text}");
}

#[test]
fn diff_json_output_parses_and_reports_the_regression() {
    let output = obs_report(&[
        "diff",
        &fixture("baseline.jsonl"),
        &fixture("slow2x.jsonl"),
        "--json",
    ]);
    assert_eq!(output.status.code(), Some(1));
    let doc = eadrl_obs::json::parse(stdout_of(&output).trim()).expect("valid JSON");
    assert_eq!(
        doc.get("regressed"),
        Some(&eadrl_obs::json::JsonValue::Bool(true))
    );
    let deltas = doc.get("deltas").and_then(|d| d.as_arr()).expect("deltas");
    assert_eq!(deltas.len(), 4, "all four paths clear the noise floor");
}

#[test]
fn tree_report_runs_on_the_golden_fixture() {
    let output = obs_report(&["tree", &fixture("golden.jsonl")]);
    assert!(output.status.success());
    let text = stdout_of(&output);
    assert!(text.contains("events: 14"), "{text}");
    assert!(text.contains("top"), "hotspot section present: {text}");
    // Shape mode by default: no par.worker rows.
    assert!(!text.contains("par.worker"), "{text}");
    let raw = stdout_of(&obs_report(&["tree", &fixture("golden.jsonl"), "--raw"]));
    assert!(raw.contains("par.worker"), "{raw}");
}

#[test]
fn flame_output_is_folded_stacks() {
    let output = obs_report(&["flame", &fixture("golden.jsonl")]);
    assert!(output.status.success());
    let text = stdout_of(&output);
    assert!(
        text.contains("eadrl.fit;eadrl.ddpg;ddpg.targets 40\n"),
        "{text}"
    );
    for line in text.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("'stack count' shape");
        assert!(
            !stack.is_empty() && count.parse::<u64>().is_ok(),
            "bad line: {line}"
        );
    }
}

#[test]
fn check_accepts_clean_traces_and_rejects_truncated_ones() {
    let output = obs_report(&["check", &fixture("golden.jsonl")]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let dir = std::env::temp_dir().join(format!("eadrl_prof_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let truncated = dir.join("truncated.jsonl");
    let mut text = std::fs::read_to_string(fixture("golden.jsonl")).expect("fixture");
    text.push_str("{\"ts\":99,\"na");
    std::fs::write(&truncated, text).expect("write");
    let path = truncated.display().to_string();

    let output = obs_report(&["check", &path]);
    assert_eq!(
        output.status.code(),
        Some(1),
        "truncated trace must fail check"
    );
    let output = obs_report(&["check", &path, "--allow-truncated"]);
    assert!(output.status.success(), "--allow-truncated tolerates it");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(obs_report(&[]).status.code(), Some(2));
    assert_eq!(obs_report(&["tree"]).status.code(), Some(2));
    assert_eq!(
        obs_report(&["tree", "no-such-file.jsonl"]).status.code(),
        Some(2)
    );
    assert_eq!(obs_report(&["frobnicate", "x"]).status.code(), Some(2));
    assert_eq!(
        obs_report(&["diff", "a", "b", "--threshold", "bogus"])
            .status
            .code(),
        Some(2)
    );
}
