//! Telemetry events: the JSONL schema every sink speaks.
//!
//! One event is one line. The wire contract (checked by the
//! `obs_validate` binary and CI) is:
//!
//! ```json
//! {"ts": 1754489600123456, "name": "ddpg.episode", "kind": "event",
//!  "level": "info", "fields": {"total_reward": -3.2, "steps": 40}}
//! ```
//!
//! * `ts` — microseconds since the UNIX epoch (integer);
//! * `name` — dot-separated event name; span events use the full
//!   hierarchical path, e.g. `eadrl.fit/ddpg.episode`;
//! * `kind` — one of `span`, `event`, `metric`;
//! * `level` — `error` | `warn` | `info` | `debug` | `trace`;
//! * `thread` — worker-thread attribution id (omitted when `0`, the
//!   main/unattributed thread; `eadrl-par` workers carry `1 + worker
//!   index`), so the profiler can reconstruct one span tree per thread;
//! * `fields` — flat object of numbers, strings, booleans and numeric
//!   arrays (e.g. per-step weight vectors).
//!
//! Non-finite floats are encoded **losslessly** as the reserved string
//! sentinels `"NaN"`, `"Infinity"` and `"-Infinity"` (JSON itself has no
//! such literals) and parse back to the exact special value — including
//! inside numeric arrays. The sentinels are reserved: a *string* field
//! whose value is exactly one of them round-trips as the float.

use crate::json::{self, JsonValue};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity / verbosity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unexpected failures.
    Error,
    /// Contract violations and degraded behaviour (e.g. empty episodes).
    Warn,
    /// Episode/fit/refresh-grained progress; the default for JSONL traces
    /// is one step more verbose ([`Level::Debug`]).
    Info,
    /// Per-step detail: weight vectors, prediction spans.
    Debug,
    /// Per-update detail inside the DDPG inner loop.
    Trace,
}

impl Level {
    /// The wire name (`"info"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a wire name; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// What an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed scoped timer.
    Span,
    /// A point-in-time occurrence with payload fields.
    Event,
    /// A metric snapshot (registry export).
    Metric,
}

impl EventKind {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Event => "event",
            EventKind::Metric => "metric",
        }
    }

    /// Parses a wire name; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<EventKind> {
        match s {
            "span" => Some(EventKind::Span),
            "event" => Some(EventKind::Event),
            "metric" => Some(EventKind::Metric),
            _ => None,
        }
    }
}

/// A field value. `From` impls exist for the common primitives so call
/// sites can write `("reward", reward.into())`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A float.
    F64(f64),
    /// An unsigned integer (counts, sizes).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean flag.
    Bool(bool),
    /// A string (e.g. refresh cause).
    Str(String),
    /// A numeric vector (e.g. ensemble weights).
    F64s(Vec<f64>),
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::F64s(v)
    }
}

impl From<&[f64]> for Value {
    fn from(v: &[f64]) -> Self {
        Value::F64s(v.to_vec())
    }
}

/// String sentinels for the three non-finite floats (see module docs).
const NAN_SENTINEL: &str = "NaN";
const INF_SENTINEL: &str = "Infinity";
const NEG_INF_SENTINEL: &str = "-Infinity";

/// Encodes one float, mapping non-finite values to their sentinels.
fn f64_to_json(v: f64) -> JsonValue {
    if v.is_nan() {
        JsonValue::Str(NAN_SENTINEL.to_string())
    } else if v == f64::INFINITY {
        JsonValue::Str(INF_SENTINEL.to_string())
    } else if v == f64::NEG_INFINITY {
        JsonValue::Str(NEG_INF_SENTINEL.to_string())
    } else {
        JsonValue::Num(v)
    }
}

/// Decodes a float from a number, a sentinel string, or a legacy `null`
/// (traces written before the sentinel encoding).
fn f64_from_json(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(n) => Some(*n),
        JsonValue::Str(s) if s == NAN_SENTINEL => Some(f64::NAN),
        JsonValue::Str(s) if s == INF_SENTINEL => Some(f64::INFINITY),
        JsonValue::Str(s) if s == NEG_INF_SENTINEL => Some(f64::NEG_INFINITY),
        JsonValue::Null => Some(f64::NAN),
        _ => None,
    }
}

impl Value {
    fn to_json(&self) -> JsonValue {
        match self {
            Value::F64(v) => f64_to_json(*v),
            Value::U64(v) => JsonValue::Num(*v as f64),
            Value::I64(v) => JsonValue::Num(*v as f64),
            Value::Bool(v) => JsonValue::Bool(*v),
            Value::Str(v) => JsonValue::Str(v.clone()),
            Value::F64s(v) => JsonValue::Arr(v.iter().map(|&x| f64_to_json(x)).collect()),
        }
    }

    fn from_json(v: &JsonValue) -> Option<Value> {
        match v {
            // Sentinel strings decode as the float they stand for; other
            // strings stay strings.
            JsonValue::Str(s)
                if s != NAN_SENTINEL && s != INF_SENTINEL && s != NEG_INF_SENTINEL =>
            {
                Some(Value::Str(s.clone()))
            }
            JsonValue::Bool(b) => Some(Value::Bool(*b)),
            JsonValue::Arr(items) => {
                let nums: Option<Vec<f64>> = items.iter().map(f64_from_json).collect();
                nums.map(Value::F64s)
            }
            other => f64_from_json(other).map(Value::F64),
        }
    }
}

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the UNIX epoch.
    pub ts_us: u64,
    /// Dot-separated name (span events: the full `/`-joined path).
    pub name: String,
    /// What the event records.
    pub kind: EventKind,
    /// Severity.
    pub level: Level,
    /// Worker-thread attribution id: `0` for the main/unattributed
    /// thread, `1 + worker index` inside `eadrl-par` workers (set
    /// through [`crate::worker_context`]).
    pub thread: u64,
    /// Payload fields, in emission order.
    pub fields: Vec<(String, Value)>,
}

/// Current wall-clock time in microseconds since the UNIX epoch.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

impl Event {
    /// Creates an event stamped with the current wall clock.
    pub fn new(name: impl Into<String>, kind: EventKind, level: Level) -> Event {
        Event {
            ts_us: now_us(),
            name: name.into(),
            kind,
            level,
            thread: crate::context::thread_id(),
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Event {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Looks up a field value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True when the event name, split on the `/` span separator,
    /// contains `segment` (so `require("eadrl.predict_next")` matches the
    /// span `eadrl.forecast/eadrl.predict_next`).
    pub fn name_matches(&self, segment: &str) -> bool {
        self.name == segment || self.name.split('/').any(|part| part == segment)
    }

    /// Serializes to one JSON line (no trailing newline). The `thread`
    /// key is written only when nonzero, so single-threaded traces keep
    /// the exact pre-profiler wire format.
    pub fn to_json_line(&self) -> String {
        let fields = JsonValue::Obj(
            self.fields
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let mut obj = vec![
            ("ts".to_string(), JsonValue::Num(self.ts_us as f64)),
            ("name".to_string(), JsonValue::Str(self.name.clone())),
            (
                "kind".to_string(),
                JsonValue::Str(self.kind.as_str().to_string()),
            ),
            (
                "level".to_string(),
                JsonValue::Str(self.level.as_str().to_string()),
            ),
        ];
        if self.thread != 0 {
            obj.push(("thread".to_string(), JsonValue::Num(self.thread as f64)));
        }
        obj.push(("fields".to_string(), fields));
        JsonValue::Obj(obj).to_json()
    }

    /// Parses an event back from one JSON line. Numeric field values come
    /// back as [`Value::F64`] (JSON does not distinguish integer kinds);
    /// use [`Event::semantically_eq`] for round-trip comparisons.
    pub fn from_json_line(line: &str) -> Result<Event, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let ts = v
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or("missing numeric 'ts'")?;
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("missing string 'name'")?
            .to_string();
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .and_then(EventKind::parse)
            .ok_or("missing or unknown 'kind'")?;
        let level = v
            .get("level")
            .and_then(JsonValue::as_str)
            .and_then(Level::parse)
            .ok_or("missing or unknown 'level'")?;
        let thread = v
            .get("thread")
            .map(|t| t.as_f64().ok_or("non-numeric 'thread'"))
            .transpose()?
            .unwrap_or(0.0) as u64;
        let mut fields = Vec::new();
        if let Some(JsonValue::Obj(raw)) = v.get("fields") {
            for (k, fv) in raw {
                let value =
                    Value::from_json(fv).ok_or_else(|| format!("bad field value for '{k}'"))?;
                fields.push((k.clone(), value));
            }
        }
        Ok(Event {
            ts_us: ts as u64,
            name,
            kind,
            level,
            thread,
            fields,
        })
    }

    /// Equality up to JSON's single number type: `U64(3)` equals `F64(3.0)`.
    /// `NaN` compares equal to `NaN` (scalars and vector elements), so a
    /// decoded trace line equals what was written.
    pub fn semantically_eq(&self, other: &Event) -> bool {
        fn num(v: &Value) -> Option<f64> {
            match v {
                Value::F64(x) => Some(*x),
                Value::U64(x) => Some(*x as f64),
                Value::I64(x) => Some(*x as f64),
                _ => None,
            }
        }
        fn f64_eq(a: f64, b: f64) -> bool {
            a == b || (a.is_nan() && b.is_nan())
        }
        self.ts_us == other.ts_us
            && self.name == other.name
            && self.kind == other.kind
            && self.level == other.level
            && self.thread == other.thread
            && self.fields.len() == other.fields.len()
            && self
                .fields
                .iter()
                .zip(other.fields.iter())
                .all(|((ka, va), (kb, vb))| {
                    ka == kb
                        && match (num(va), num(vb)) {
                            (Some(a), Some(b)) => f64_eq(a, b),
                            _ => match (va, vb) {
                                (Value::F64s(a), Value::F64s(b)) => {
                                    a.len() == b.len()
                                        && a.iter().zip(b.iter()).all(|(&x, &y)| f64_eq(x, y))
                                }
                                _ => va == vb,
                            },
                        }
                })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_has_required_fields() {
        let e = Event::new("eadrl.fit", EventKind::Span, Level::Info).field("duration_us", 12u64);
        let line = e.to_json_line();
        let v = json::parse(&line).unwrap();
        assert!(v.get("ts").and_then(JsonValue::as_f64).is_some());
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("eadrl.fit"));
        assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("span"));
        assert_eq!(v.get("level").and_then(JsonValue::as_str), Some("info"));
    }

    #[test]
    fn name_matches_span_segments() {
        let e = Event::new(
            "eadrl.fit/ddpg.episode/ddpg.update",
            EventKind::Span,
            Level::Trace,
        );
        assert!(e.name_matches("ddpg.episode"));
        assert!(e.name_matches("eadrl.fit"));
        assert!(!e.name_matches("ddpg"));
    }

    #[test]
    fn non_finite_floats_round_trip_losslessly() {
        let e = Event::new("x.y", EventKind::Event, Level::Info)
            .field("nan", f64::NAN)
            .field("inf", f64::INFINITY)
            .field("ninf", f64::NEG_INFINITY)
            .field("vec", vec![1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        let line = e.to_json_line();
        assert!(json::parse(&line).is_ok(), "must stay valid JSON: {line}");
        let back = Event::from_json_line(&line).expect("round trip");
        assert!(matches!(back.get("nan"), Some(Value::F64(v)) if v.is_nan()));
        assert!(matches!(back.get("inf"), Some(Value::F64(v)) if *v == f64::INFINITY));
        assert!(matches!(back.get("ninf"), Some(Value::F64(v)) if *v == f64::NEG_INFINITY));
        match back.get("vec") {
            Some(Value::F64s(v)) => {
                assert_eq!(v[0], 1.5);
                assert!(v[1].is_nan());
                assert_eq!(v[2], f64::INFINITY);
                assert_eq!(v[3], f64::NEG_INFINITY);
            }
            other => panic!("expected F64s, got {other:?}"),
        }
    }

    #[test]
    fn thread_id_round_trips_and_is_omitted_when_zero() {
        let mut e = Event::new("x.y", EventKind::Span, Level::Info);
        e.thread = 0;
        assert!(!e.to_json_line().contains("thread"));
        e.thread = 3;
        let line = e.to_json_line();
        assert!(line.contains("\"thread\":3"), "{line}");
        let back = Event::from_json_line(&line).expect("round trip");
        assert_eq!(back.thread, 3);
    }

    #[test]
    fn level_ordering_is_severity_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
    }
}
