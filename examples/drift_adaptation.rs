//! Drift adaptation: watch how EA-DRL's weights and the drift-aware DEMSC
//! baseline react when the identity of the best base model flips mid-
//! stream, and how a drift detector sees the ensemble's error stream.
//!
//! ```text
//! cargo run --release --example drift_adaptation
//! ```

use eadrl::core::baselines::Demsc;
use eadrl::core::{weight_churn, Combiner, EaDrlConfig, EaDrlPolicy};
use eadrl::timeseries::drift::PageHinkley;
use eadrl::timeseries::metrics::rmse;

/// Synthetic three-model stream: model 0 is accurate in the first regime,
/// model 1 in the second, model 2 never.
fn stream(n: usize, flip_at: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let actuals: Vec<f64> = (0..n)
        .map(|t| (t as f64 / 7.0).sin() * 3.0 + 12.0)
        .collect();
    let preds = actuals
        .iter()
        .enumerate()
        .map(|(t, &a)| {
            let wiggle = ((t * 11) % 17) as f64 / 17.0 - 0.5;
            if t < flip_at {
                vec![a + 0.1 * wiggle, a + 2.0 + wiggle, a - 6.0]
            } else {
                vec![a + 2.0 - wiggle, a + 0.1 * wiggle, a - 6.0]
            }
        })
        .collect();
    (preds, actuals)
}

fn main() {
    let (preds, actuals) = stream(300, 200);
    let (warm_p, online_p) = preds.split_at(100);
    let (warm_a, online_a) = actuals.split_at(100);

    // EA-DRL: policy frozen after warm-up (the paper's offline design).
    let mut config = EaDrlConfig::default();
    config.episodes = 25;
    let mut eadrl = EaDrlPolicy::new(config);
    eadrl.warm_up(warm_p, warm_a);

    // DEMSC: drift-aware committee re-selection online.
    let mut demsc = Demsc::new(10, 0.5, 2, 42);
    demsc.warm_up(warm_p, warm_a);

    // A Page–Hinkley detector watching EA-DRL's own error stream — the
    // paper's suggested future-work hook for informed policy refresh.
    let mut detector = PageHinkley::new(0.05, 6.0);

    let mut ea_out = Vec::new();
    let mut de_out = Vec::new();
    let mut ea_trace = Vec::new();
    let mut de_trace = Vec::new();
    println!("step  EA-DRL weights (m0/m1/m2)      DEMSC weights (m0/m1/m2)");
    for (t, (p, &a)) in online_p.iter().zip(online_a.iter()).enumerate() {
        let we = eadrl.weights(3);
        let wd = demsc.weights(3);
        ea_trace.push(we.clone());
        de_trace.push(wd.clone());
        if t % 40 == 0 {
            println!(
                "{t:>4}  {:.2} / {:.2} / {:.2}              {:.2} / {:.2} / {:.2}",
                we[0], we[1], we[2], wd[0], wd[1], wd[2]
            );
        }
        let fe = eadrl.combine(p);
        let fd = demsc.combine(p);
        ea_out.push(fe);
        de_out.push(fd);
        eadrl.observe(p, a);
        demsc.observe(p, a);
        if detector.update((fe - a).abs()) {
            println!("{t:>4}  ^ Page-Hinkley flags drift in EA-DRL's error stream here");
        }
    }

    // The regime flips at online step 100 (absolute 200).
    let (ea_pre, ea_post) = ea_out.split_at(100);
    let (de_pre, de_post) = de_out.split_at(100);
    let (a_pre, a_post) = online_a.split_at(100);
    println!("\n            pre-drift RMSE   post-drift RMSE");
    println!(
        "EA-DRL      {:>12.3}   {:>14.3}   (frozen policy)",
        rmse(a_pre, ea_pre),
        rmse(a_post, ea_post)
    );
    println!(
        "DEMSC       {:>12.3}   {:>14.3}   ({} committee re-selections)",
        rmse(a_pre, de_pre),
        rmse(a_post, de_post),
        demsc.reselections()
    );
    println!(
        "\nweight churn (mean L1 movement per step): EA-DRL {:.4}, DEMSC {:.4}",
        weight_churn(&ea_trace),
        weight_churn(&de_trace)
    );
    println!(
        "\nThe paper's future-work direction — periodic or drift-triggered\n\
         policy refresh — is exactly the hook the Page-Hinkley signal above\n\
         would drive."
    );
}
