//! Composable building blocks for synthetic time series.
//!
//! A [`SeriesBuilder`] accumulates additive components (seasonality, trend,
//! ARMA noise, level shifts, regime switches) and renders them into one
//! deterministic series. The blocks are exactly the structural features the
//! EA-DRL paper's evaluation depends on: periodic behaviour that favours
//! seasonal models, drifts that favour adaptive combiners, and noise
//! regimes that reshuffle which base model is momentarily best.

use eadrl_rng::DetRng;

/// Additive component of a synthetic series.
#[derive(Debug, Clone)]
enum Component {
    /// `amplitude * sin(2π (t + phase) / period)`.
    Seasonal {
        period: f64,
        amplitude: f64,
        phase: f64,
    },
    /// Linear trend `slope * t`.
    Trend { slope: f64 },
    /// Gaussian ARMA(1,1) noise with AR coefficient `phi`, MA coefficient
    /// `theta` and innovation std `sigma`.
    ArmaNoise { phi: f64, theta: f64, sigma: f64 },
    /// Permanent additive level shift of `magnitude` starting at the given
    /// fraction of the series (a sudden concept drift).
    LevelShift { at_fraction: f64, magnitude: f64 },
    /// Amplitude of the *first* seasonal component is multiplied by
    /// `factor` from the given fraction onward (a gradual-feel structural
    /// drift: the seasonal pattern strengthens/weakens).
    SeasonalBreak { at_fraction: f64, factor: f64 },
    /// Random walk `w_t = w_{t-1} + N(0, sigma)` (stock-index backbone).
    RandomWalk { sigma: f64 },
    /// Multiplies innovation volatility by `factor` inside the given
    /// fraction range (heteroskedastic burst, e.g. storms in weather data).
    VolatilityRegime {
        from_fraction: f64,
        to_fraction: f64,
        factor: f64,
    },
}

/// Builder of deterministic synthetic series.
#[derive(Debug, Clone)]
pub struct SeriesBuilder {
    seed: u64,
    base_level: f64,
    components: Vec<Component>,
    clamp_min: Option<f64>,
}

impl SeriesBuilder {
    /// Starts a builder with the given RNG seed and base level.
    pub fn new(seed: u64, base_level: f64) -> Self {
        SeriesBuilder {
            seed,
            base_level,
            components: Vec::new(),
            clamp_min: None,
        }
    }

    /// Adds a sinusoidal seasonal component.
    pub fn seasonal(mut self, period: f64, amplitude: f64, phase: f64) -> Self {
        self.components.push(Component::Seasonal {
            period,
            amplitude,
            phase,
        });
        self
    }

    /// Adds a linear trend.
    pub fn trend(mut self, slope: f64) -> Self {
        self.components.push(Component::Trend { slope });
        self
    }

    /// Adds ARMA(1,1) noise.
    pub fn arma_noise(mut self, phi: f64, theta: f64, sigma: f64) -> Self {
        self.components
            .push(Component::ArmaNoise { phi, theta, sigma });
        self
    }

    /// Adds a sudden level shift at `at_fraction` of the series length.
    pub fn level_shift(mut self, at_fraction: f64, magnitude: f64) -> Self {
        self.components.push(Component::LevelShift {
            at_fraction,
            magnitude,
        });
        self
    }

    /// Re-scales the first seasonal component from `at_fraction` onward.
    pub fn seasonal_break(mut self, at_fraction: f64, factor: f64) -> Self {
        self.components.push(Component::SeasonalBreak {
            at_fraction,
            factor,
        });
        self
    }

    /// Adds a Gaussian random-walk backbone.
    pub fn random_walk(mut self, sigma: f64) -> Self {
        self.components.push(Component::RandomWalk { sigma });
        self
    }

    /// Scales noise volatility inside a fraction range.
    pub fn volatility_regime(mut self, from_fraction: f64, to_fraction: f64, factor: f64) -> Self {
        self.components.push(Component::VolatilityRegime {
            from_fraction,
            to_fraction,
            factor,
        });
        self
    }

    /// Clamps the rendered series from below (demand/flow series are
    /// non-negative).
    pub fn clamp_min(mut self, min: f64) -> Self {
        self.clamp_min = Some(min);
        self
    }

    /// Renders `length` values.
    pub fn build(&self, length: usize) -> Vec<f64> {
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut out = vec![self.base_level; length];

        // Volatility multiplier per step (from VolatilityRegime components).
        let mut vol = vec![1.0_f64; length];
        for c in &self.components {
            if let Component::VolatilityRegime {
                from_fraction,
                to_fraction,
                factor,
            } = c
            {
                let from = (from_fraction * length as f64) as usize;
                let to = ((to_fraction * length as f64) as usize).min(length);
                for v in vol.iter_mut().take(to).skip(from) {
                    *v *= factor;
                }
            }
        }

        // Detect the first seasonal component for SeasonalBreak handling.
        let mut seasonal_scale = vec![1.0_f64; length];
        for c in &self.components {
            if let Component::SeasonalBreak {
                at_fraction,
                factor,
            } = c
            {
                let at = (at_fraction * length as f64) as usize;
                for s in seasonal_scale.iter_mut().skip(at) {
                    *s *= factor;
                }
            }
        }

        let mut first_seasonal_done = false;
        for c in &self.components {
            match c {
                Component::Seasonal {
                    period,
                    amplitude,
                    phase,
                } => {
                    let apply_break = !first_seasonal_done;
                    first_seasonal_done = true;
                    for (t, o) in out.iter_mut().enumerate() {
                        let s = amplitude
                            * (2.0 * std::f64::consts::PI * (t as f64 + phase) / period).sin();
                        *o += if apply_break {
                            s * seasonal_scale[t]
                        } else {
                            s
                        };
                    }
                }
                Component::Trend { slope } => {
                    for (t, o) in out.iter_mut().enumerate() {
                        *o += slope * t as f64;
                    }
                }
                Component::ArmaNoise { phi, theta, sigma } => {
                    let mut prev_x = 0.0;
                    let mut prev_eps = 0.0;
                    for (t, o) in out.iter_mut().enumerate() {
                        let eps = gaussian(&mut rng) * sigma * vol[t];
                        let x = phi * prev_x + eps + theta * prev_eps;
                        prev_x = x;
                        prev_eps = eps;
                        *o += x;
                    }
                }
                Component::LevelShift {
                    at_fraction,
                    magnitude,
                } => {
                    let at = (at_fraction * length as f64) as usize;
                    for o in out.iter_mut().skip(at) {
                        *o += magnitude;
                    }
                }
                Component::RandomWalk { sigma } => {
                    let mut w = 0.0;
                    for (t, o) in out.iter_mut().enumerate() {
                        w += gaussian(&mut rng) * sigma * vol[t];
                        *o += w;
                    }
                }
                Component::SeasonalBreak { .. } | Component::VolatilityRegime { .. } => {}
            }
        }

        if let Some(min) = self.clamp_min {
            for o in out.iter_mut() {
                *o = o.max(min);
            }
        }
        out
    }
}

/// Standard normal via Box–Muller (uses two uniforms per call; simple and
/// adequate for synthetic data).
fn gaussian(rng: &mut DetRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let b = SeriesBuilder::new(7, 10.0)
            .seasonal(24.0, 3.0, 0.0)
            .arma_noise(0.5, 0.2, 1.0);
        assert_eq!(b.build(100), b.build(100));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SeriesBuilder::new(1, 0.0)
            .arma_noise(0.0, 0.0, 1.0)
            .build(50);
        let b = SeriesBuilder::new(2, 0.0)
            .arma_noise(0.0, 0.0, 1.0)
            .build(50);
        assert_ne!(a, b);
    }

    #[test]
    fn pure_seasonal_has_correct_period() {
        let s = SeriesBuilder::new(0, 0.0)
            .seasonal(10.0, 1.0, 0.0)
            .build(40);
        for t in 0..30 {
            assert!((s[t] - s[t + 10]).abs() < 1e-9);
        }
    }

    #[test]
    fn trend_is_linear() {
        let s = SeriesBuilder::new(0, 5.0).trend(0.5).build(10);
        assert_eq!(s[0], 5.0);
        assert!((s[9] - 9.5).abs() < 1e-12);
    }

    #[test]
    fn level_shift_changes_mean() {
        let s = SeriesBuilder::new(0, 0.0)
            .level_shift(0.5, 100.0)
            .build(100);
        let first: f64 = s[..50].iter().sum::<f64>() / 50.0;
        let second: f64 = s[50..].iter().sum::<f64>() / 50.0;
        assert_eq!(first, 0.0);
        assert_eq!(second, 100.0);
    }

    #[test]
    fn seasonal_break_rescales_first_seasonal() {
        let s = SeriesBuilder::new(0, 0.0)
            .seasonal(8.0, 1.0, 0.0)
            .seasonal_break(0.5, 3.0)
            .build(64);
        let amp_before = s[..32].iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        let amp_after = s[32..].iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        assert!(amp_after > 2.0 * amp_before);
    }

    #[test]
    fn clamp_min_floors_values() {
        let s = SeriesBuilder::new(3, 0.0)
            .arma_noise(0.0, 0.0, 5.0)
            .clamp_min(0.0)
            .build(200);
        assert!(s.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn random_walk_wanders() {
        let s = SeriesBuilder::new(11, 0.0).random_walk(1.0).build(500);
        let spread = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - s.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 5.0, "random walk spread only {spread}");
    }

    #[test]
    fn volatility_regime_raises_local_variance() {
        let s = SeriesBuilder::new(5, 0.0)
            .arma_noise(0.0, 0.0, 1.0)
            .volatility_regime(0.5, 1.0, 10.0)
            .build(2000);
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!(var(&s[1000..]) > 10.0 * var(&s[..1000]));
    }
}
