//! Cross-thread-count profiler golden test: the same seeded quickstart
//! run, traced at `EADRL_PAR_THREADS=1` and `=4`, must produce the
//! **identical** shape-stable span-tree table — same paths, same call
//! counts, in the same order (timestamps and durations are wall-clock
//! and excluded by construction). Worker spans inherit the caller's
//! span path and `TreeOptions::shape_stable` collapses the per-chunk
//! `par.worker` spans, which are the only thread-count-dependent part
//! of a trace; if instrumentation ever leaks the thread count into the
//! tree shape, this test pins it down.
//!
//! The trace round-trips through the JSONL wire format on the way to
//! the profiler, so this also exercises the exact path CI uses
//! (`trace file → obs_report`).

use eadrl::core::{EaDrl, EaDrlConfig};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::quick_pool;
use eadrl::obs::{Level, RingSink};
use eadrl::prof::{SpanTree, Trace, TreeOptions};
use std::sync::Arc;

/// Runs the quickstart pipeline under `threads` workers at trace level
/// and returns the shape-stable `(path, count)` table.
fn profile_with_threads(threads: &str) -> Vec<(String, u64)> {
    std::env::set_var(eadrl::par::THREADS_ENV, threads);
    let sink = Arc::new(RingSink::new(1 << 17));
    eadrl::obs::set_sink(sink.clone());
    eadrl::obs::set_level(Some(Level::Trace));

    let series = generate(DatasetId::TaxiDemand2, 240, 11);
    let (train, test) = series.split(0.75);
    let mut config = EaDrlConfig::default();
    config.omega = 8;
    config.episodes = 3;
    config.restarts = 1;
    config.ddpg.seed = 11;
    let mut model = EaDrl::new(quick_pool(4, 48, 11), config);
    model.fit(train).expect("fit");
    let mut history = train.to_vec();
    for &actual in test.iter().take(5) {
        model.predict_next(&history);
        history.push(actual);
    }

    eadrl::obs::set_level(None);
    assert_eq!(sink.dropped(), 0, "ring must not overflow, or counts lie");

    // Round-trip through the wire format, exactly like `obs_report`.
    let jsonl: String = sink
        .events()
        .iter()
        .map(|e| e.to_json_line())
        .collect::<Vec<_>>()
        .join("\n");
    let trace = Trace::from_jsonl(&jsonl);
    assert!(!trace.is_truncated(), "round-tripped trace must be clean");
    SpanTree::build(&trace, &TreeOptions::shape_stable()).shape()
}

#[test]
fn span_tree_table_is_identical_across_thread_counts() {
    let serial = profile_with_threads("1");
    let parallel = profile_with_threads("4");
    std::env::remove_var(eadrl::par::THREADS_ENV);

    assert!(!serial.is_empty(), "trace-level run must produce spans");
    assert_eq!(
        serial, parallel,
        "shape-stable span tree (paths + counts) must not depend on the thread count"
    );

    // The table must actually reach the new instrumentation: batched
    // DDPG phase spans, nn kernel spans, and the parallel map itself.
    for needle in [
        "ddpg.targets",
        "critic.forward",
        "nn.forward_batch",
        "par.map",
    ] {
        assert!(
            serial
                .iter()
                .any(|(path, _)| path.split('/').any(|seg| seg == needle)),
            "expected a span path containing '{needle}' in {serial:?}"
        );
    }
}
