//! Autocorrelation, partial autocorrelation and rolling moments.

/// Sample autocorrelation function up to `max_lag` (inclusive); index 0 is
/// always 1.0. Returns an empty vector for series shorter than 2.
pub fn acf(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|v| (v - mean) * (v - mean)).sum();
    if denom < 1e-300 {
        // Constant series: define ACF as 1 at lag 0, 0 elsewhere.
        let mut out = vec![0.0; max_lag.min(n - 1) + 1];
        out[0] = 1.0;
        return out;
    }
    let max_lag = max_lag.min(n - 1);
    (0..=max_lag)
        .map(|lag| {
            let num: f64 = (lag..n)
                .map(|t| (series[t] - mean) * (series[t - lag] - mean))
                .sum();
            num / denom
        })
        .collect()
}

/// Partial autocorrelation function via the Durbin–Levinson recursion,
/// lags `1..=max_lag`. Empty for series shorter than 2.
pub fn pacf(series: &[f64], max_lag: usize) -> Vec<f64> {
    let rho = acf(series, max_lag);
    if rho.len() < 2 {
        return Vec::new();
    }
    let max_lag = rho.len() - 1;
    let mut pacf_out = Vec::with_capacity(max_lag);
    // phi[k][j]: AR(k) coefficient j (1-indexed by convention, 0 slot unused).
    let mut phi_prev = vec![0.0; max_lag + 1];
    let mut v: f64 = 1.0; // prediction error variance ratio
    for k in 1..=max_lag {
        let mut num = rho[k];
        for j in 1..k {
            num -= phi_prev[j] * rho[k - j];
        }
        let phi_kk = if v.abs() < 1e-300 { 0.0 } else { num / v };
        let mut phi_cur = phi_prev.clone();
        phi_cur[k] = phi_kk;
        for j in 1..k {
            phi_cur[j] = phi_prev[j] - phi_kk * phi_prev[k - j];
        }
        v *= 1.0 - phi_kk * phi_kk;
        pacf_out.push(phi_kk);
        phi_prev = phi_cur;
    }
    pacf_out
}

/// Ljung–Box portmanteau statistic for residual autocorrelation up to
/// `max_lag`: `Q = n(n+2) Σ_k ρ_k² / (n-k)`.
///
/// Under the white-noise null, `Q` is approximately χ² with `max_lag`
/// degrees of freedom; as a rule of thumb, `Q` far above `max_lag`
/// (roughly `max_lag + 2√(2·max_lag)`) indicates leftover structure.
/// Returns `None` for series shorter than `max_lag + 2`.
pub fn ljung_box(residuals: &[f64], max_lag: usize) -> Option<f64> {
    let n = residuals.len();
    if max_lag == 0 || n < max_lag + 2 {
        return None;
    }
    let rho = acf(residuals, max_lag);
    let nf = n as f64;
    let q = nf
        * (nf + 2.0)
        * (1..=max_lag)
            .map(|k| rho[k] * rho[k] / (nf - k as f64))
            .sum::<f64>();
    Some(q)
}

/// Rolling mean with window `w`; output is `len - w + 1` long (empty when
/// the series is shorter than `w` or `w == 0`).
pub fn rolling_mean(series: &[f64], w: usize) -> Vec<f64> {
    if w == 0 || series.len() < w {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(series.len() - w + 1);
    let mut sum: f64 = series[..w].iter().sum();
    out.push(sum / w as f64);
    for t in w..series.len() {
        sum += series[t] - series[t - w];
        out.push(sum / w as f64);
    }
    out
}

/// Rolling population standard deviation with window `w`; aligned with
/// [`rolling_mean`].
pub fn rolling_std(series: &[f64], w: usize) -> Vec<f64> {
    if w == 0 || series.len() < w {
        return Vec::new();
    }
    // Recompute per window: O(n·w) but numerically safe (the running-sum
    // trick for variance cancels catastrophically on large-mean series).
    (0..=series.len() - w)
        .map(|i| {
            let win = &series[i..i + w];
            let m = win.iter().sum::<f64>() / w as f64;
            (win.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / w as f64).sqrt()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acf_lag_zero_is_one() {
        let s = [1.0, 3.0, 2.0, 5.0, 4.0];
        let a = acf(&s, 2);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn acf_of_alternating_series_is_negative_at_lag_one() {
        let s: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let a = acf(&s, 1);
        assert!(a[1] < -0.9);
    }

    #[test]
    fn acf_of_constant_series() {
        let a = acf(&[5.0; 10], 3);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 0.0);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        // AR(1) with phi = 0.8, deterministic "noise" via a simple LCG.
        let mut state = 42u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut s = vec![0.0];
        for _ in 0..2000 {
            let prev = *s.last().unwrap();
            s.push(0.8 * prev + noise());
        }
        let p = pacf(&s, 4);
        assert!((p[0] - 0.8).abs() < 0.1, "pacf lag1 = {}", p[0]);
        for lag in 1..4 {
            assert!(p[lag].abs() < 0.1, "pacf lag{} = {}", lag + 1, p[lag]);
        }
    }

    #[test]
    fn ljung_box_separates_noise_from_structure() {
        // White-ish noise via an LCG: Q should be small (≈ max_lag).
        let mut state = 77u64;
        let noise: Vec<f64> = (0..400)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let q_noise = ljung_box(&noise, 10).unwrap();
        assert!(q_noise < 25.0, "white noise Q = {q_noise}");

        // A strongly autocorrelated series: Q should blow past the
        // critical region.
        let s: Vec<f64> = (0..400).map(|t| (t as f64 / 10.0).sin()).collect();
        let q_struct = ljung_box(&s, 10).unwrap();
        assert!(q_struct > 100.0, "structured Q = {q_struct}");
    }

    #[test]
    fn ljung_box_degenerate_inputs() {
        assert!(ljung_box(&[1.0; 5], 10).is_none());
        assert!(ljung_box(&[1.0; 100], 0).is_none());
    }

    #[test]
    fn rolling_mean_matches_manual() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(rolling_mean(&s, 2), vec![1.5, 2.5, 3.5]);
        assert!(rolling_mean(&s, 5).is_empty());
        assert!(rolling_mean(&s, 0).is_empty());
    }

    #[test]
    fn rolling_std_of_constant_window_is_zero() {
        let s = [2.0, 2.0, 2.0, 5.0];
        let r = rolling_std(&s, 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], 0.0);
        assert!((r[2] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rolling_std_is_stable_under_huge_means() {
        // Classic catastrophic-cancellation trap for running-sum variance:
        // tiny spread riding on a 1e12 offset.
        let s: Vec<f64> = (0..50).map(|i| 1e12 + (i % 2) as f64).collect();
        let r = rolling_std(&s, 4);
        for v in r {
            assert!((v - 0.5).abs() < 1e-3, "std {v} should be 0.5");
        }
    }

    #[test]
    fn short_series_edge_cases() {
        assert!(acf(&[1.0], 3).is_empty());
        assert!(pacf(&[1.0], 3).is_empty());
    }
}
