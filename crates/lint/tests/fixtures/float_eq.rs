// Fixture: no-float-eq. Linted with the pretend path
// `crates/nn/src/fixture.rs`.

pub fn positives(x: f64) -> bool {
    let y = 0.5 * x;
    let lit = x == 0.0; //~ no-float-eq
    let lit2 = 1.0 != x; //~ no-float-eq
    let neg_lit = x == -2.5; //~ no-float-eq
    let bind = y == x; //~ no-float-eq
    lit || lit2 || neg_lit || bind
}

pub fn negatives(n: usize, x: f64, v: &[f64], s: &str) -> bool {
    let ints = n == 3;
    let projected_len = v.len() == n; // read through a float slice: usize
    let projected_bits = n as u64 == x.to_bits(); // x.to_bits() is not x
    let in_string = s == "== 0.0"; // the float eq lives inside a string
    ints && projected_len && projected_bits && in_string
}

pub fn suppressed(d: f64) -> bool {
    // eadrl-lint: allow(no-float-eq): subgradient hinge — exact zero is the branch point
    d == 0.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_eq_in_tests_is_fine() {
        let z = 0.0_f64;
        assert!(z == 0.0);
        let y = [1.0, 2.0]; // must not taint `y` bindings in lib code
        assert!(y[0] == 1.0);
    }
}
