//! The online-combination interface shared by EA-DRL and all baselines.

use eadrl_linalg::vector::dot;
use eadrl_timeseries::window::StepRing;

/// An online ensemble-combination method.
///
/// The evaluation protocol drives every method through the same loop:
///
/// 1. [`Combiner::warm_up`] once, with the base models' rolling one-step
///    predictions over a held-out validation tail of the training set
///    (this is where EA-DRL trains its policy, Stacking fits its
///    meta-learner, SWE seeds its error window, …);
/// 2. for each online step: [`Combiner::combine`] with the current model
///    predictions, then [`Combiner::observe`] with the realized actual.
///
/// The default [`Combiner::combine`] forms the paper's linearly weighted
/// ensemble (Eq. 1) from [`Combiner::weights`]; non-linear methods such as
/// Stacking override `combine` directly.
///
/// ```
/// use eadrl_core::baselines::SlidingWindowEnsemble;
/// use eadrl_core::Combiner;
///
/// let mut swe = SlidingWindowEnsemble::new(5);
/// // Model 0 keeps being right; SWE shifts weight onto it.
/// for _ in 0..5 {
///     swe.observe(&[1.0, 4.0], 1.0);
/// }
/// let w = swe.weights(2);
/// assert!(w[0] > 0.9);
/// assert!((swe.combine(&[2.0, 10.0]) - 2.0).abs() < 1.0);
/// ```
pub trait Combiner: Send {
    /// Method name as used in the paper's tables (e.g. `"SWE"`).
    fn name(&self) -> &str;

    /// One-off calibration on validation predictions.
    ///
    /// `preds[t][i]` is model `i`'s forecast for validation step `t`;
    /// `actuals[t]` the realized value.
    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]);

    /// Current convex combination weights over the `m` models.
    fn weights(&mut self, m: usize) -> Vec<f64>;

    /// Combines one step's model predictions into the ensemble forecast.
    fn combine(&mut self, preds: &[f64]) -> f64 {
        let w = self.weights(preds.len());
        dot(&w, preds)
    }

    /// Reveals the realized value for the step just combined, along with
    /// the model predictions for that step.
    fn observe(&mut self, preds: &[f64], actual: f64);
}

/// Drives a combiner over an online segment and returns its ensemble
/// forecasts (one per step of `preds`).
pub fn run_combiner(combiner: &mut dyn Combiner, preds: &[Vec<f64>], actuals: &[f64]) -> Vec<f64> {
    assert_eq!(preds.len(), actuals.len(), "preds/actuals misaligned");
    let mut out = Vec::with_capacity(preds.len());
    for (p, &a) in preds.iter().zip(actuals.iter()) {
        out.push(combiner.combine(p));
        combiner.observe(p, a);
    }
    out
}

/// Like [`run_combiner`], but additionally records the weight vector the
/// combiner used at every step — the raw material for weight-trajectory
/// analyses (how fast does a method move mass between models around a
/// drift?).
pub fn run_combiner_traced(
    combiner: &mut dyn Combiner,
    preds: &[Vec<f64>],
    actuals: &[f64],
) -> (Vec<f64>, Vec<Vec<f64>>) {
    assert_eq!(preds.len(), actuals.len(), "preds/actuals misaligned");
    let mut out = Vec::with_capacity(preds.len());
    let mut traces = Vec::with_capacity(preds.len());
    for (p, &a) in preds.iter().zip(actuals.iter()) {
        let w = combiner.weights(p.len());
        traces.push(w);
        out.push(combiner.combine(p));
        combiner.observe(p, a);
    }
    (out, traces)
}

/// Summary of how much a weight trajectory moves over time: the mean L1
/// distance between consecutive weight vectors (0 = static combiner).
pub fn weight_churn(traces: &[Vec<f64>]) -> f64 {
    if traces.len() < 2 {
        return 0.0;
    }
    let total: f64 = traces
        .windows(2)
        .map(|w| {
            w[0].iter()
                .zip(w[1].iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        })
        .sum();
    total / (traces.len() - 1) as f64
}

/// Shared helper: inverse-error weights `w_i ∝ 1 / (e_i + ε)`, the SWE
/// recipe applied to any per-model error vector.
pub fn inverse_error_weights(errors: &[f64]) -> Vec<f64> {
    let eps = 1e-9;
    let inv: Vec<f64> = errors
        .iter()
        .map(|e| 1.0 / (e.abs().max(0.0) + eps))
        .collect();
    let sum: f64 = inv.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        inv.into_iter().map(|v| v / sum).collect()
    } else {
        vec![1.0 / errors.len() as f64; errors.len()]
    }
}

/// A bounded history of `(predictions, actual)` pairs with rolling
/// per-model RMSE — the "recent performance over a time sliding-window"
/// machinery that SWE, Top.sel, Clus and DEMSC share.
#[derive(Debug, Clone)]
pub struct SlidingErrorWindow {
    history: StepRing,
}

impl SlidingErrorWindow {
    /// Creates a window of the given length.
    ///
    /// # Panics
    /// Panics when `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "sliding window must be positive");
        SlidingErrorWindow {
            history: StepRing::new(window),
        }
    }

    /// Adds one step, evicting the oldest beyond the window. The evicted
    /// step's row allocation is reused, so a saturated window records
    /// steps without allocating.
    pub fn push(&mut self, preds: &[f64], actual: f64) {
        self.history.record(preds, actual);
    }

    /// Number of stored steps.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True when no step has been stored.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Per-model RMSE over the stored window; `None` when empty.
    pub fn model_rmse(&self, m: usize) -> Option<Vec<f64>> {
        if self.history.is_empty() {
            return None;
        }
        let mut sse = vec![0.0; m];
        for (preds, actual) in self.history.iter() {
            for (s, &p) in sse.iter_mut().zip(preds.iter()) {
                let e = p - actual;
                *s += e * e;
            }
        }
        let n = self.history.len() as f64;
        Some(sse.into_iter().map(|s| (s / n).sqrt()).collect())
    }

    /// The stored prediction vectors for model `i` (for clustering).
    pub fn model_track(&self, i: usize) -> Vec<f64> {
        self.history.iter().map(|(p, _)| p[i]).collect()
    }

    /// The stored actuals.
    pub fn actuals(&self) -> Vec<f64> {
        self.history.iter().map(|(_, a)| *a).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial combiner for the runner test: always uniform weights.
    struct Uniform;

    impl Combiner for Uniform {
        fn name(&self) -> &str {
            "uniform"
        }

        fn warm_up(&mut self, _preds: &[Vec<f64>], _actuals: &[f64]) {}

        fn weights(&mut self, m: usize) -> Vec<f64> {
            vec![1.0 / m as f64; m]
        }

        fn observe(&mut self, _preds: &[f64], _actual: f64) {}
    }

    #[test]
    fn run_combiner_averages_predictions() {
        let preds = vec![vec![1.0, 3.0], vec![2.0, 4.0]];
        let actuals = [2.0, 3.0];
        let out = run_combiner(&mut Uniform, &preds, &actuals);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_weights() {
        let preds = vec![vec![1.0, 3.0]; 4];
        let actuals = [2.0; 4];
        let plain = run_combiner(&mut Uniform, &preds, &actuals);
        let (traced, weights) = run_combiner_traced(&mut Uniform, &preds, &actuals);
        assert_eq!(plain, traced);
        assert_eq!(weights.len(), 4);
        assert!(weights.iter().all(|w| w == &vec![0.5, 0.5]));
        assert_eq!(weight_churn(&weights), 0.0);
    }

    #[test]
    fn weight_churn_measures_movement() {
        let traces = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 1.0]];
        // Step 1: L1 = 2; step 2: L1 = 0 -> mean 1.
        assert!((weight_churn(&traces) - 1.0).abs() < 1e-12);
        assert_eq!(weight_churn(&[]), 0.0);
    }

    #[test]
    fn inverse_error_weights_favor_accurate_models() {
        let w = inverse_error_weights(&[0.1, 1.0, 10.0]);
        assert!(w[0] > w[1] && w[1] > w[2]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_error_weights_survive_zero_error() {
        let w = inverse_error_weights(&[0.0, 1.0]);
        assert!(w[0] > 0.99);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_evicts_and_scores() {
        let mut w = SlidingErrorWindow::new(2);
        w.push(&[1.0, 5.0], 1.0); // errors 0, 4
        w.push(&[2.0, 1.0], 1.0); // errors 1, 0
        w.push(&[3.0, 1.0], 1.0); // errors 2, 0 (evicts first)
        assert_eq!(w.len(), 2);
        let rmse = w.model_rmse(2).unwrap();
        assert!((rmse[0] - ((1.0 + 4.0) / 2.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse[1], 0.0);
        assert_eq!(w.model_track(0), vec![2.0, 3.0]);
        assert_eq!(w.actuals(), vec![1.0, 1.0]);
    }

    #[test]
    fn empty_window_has_no_rmse() {
        let w = SlidingErrorWindow::new(3);
        assert!(w.model_rmse(2).is_none());
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = SlidingErrorWindow::new(0);
    }
}
