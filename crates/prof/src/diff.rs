//! Trace-to-trace latency diff — the CI regression gate.
//!
//! Compares per-path **total time** between a baseline tree and a new
//! tree. A path regresses when `new / base > threshold` (e.g. 1.15 for
//! "15% slower"). Two noise defenses keep the gate honest on real CI
//! machines:
//!
//! * a **minimum-microseconds floor**: paths where both sides are below
//!   `min_us` are skipped outright — a 3µs span doubling to 6µs is
//!   scheduler jitter, not a regression;
//! * paths present only in the new trace count as regressions **only**
//!   above the floor (new instrumentation of something cheap should
//!   not fail the build; a brand-new hot path should).
//!
//! Paths that vanished from the new trace are reported (ratio 0) but
//! never regress — removed work is not a slowdown.

use crate::tree::SpanTree;

/// Tuning for [`DiffReport::compare`].
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Regression threshold on `new / base` total time. 1.15 = fail
    /// when a path got more than 15% slower.
    pub threshold: f64,
    /// Noise floor, µs: paths below it on both sides are skipped.
    pub min_us: u64,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            threshold: 1.15,
            min_us: 100,
        }
    }
}

/// One compared path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathDelta {
    /// Full span path.
    pub path: String,
    /// Baseline total, µs (0 when the path is new).
    pub base_total_us: u64,
    /// New total, µs (0 when the path vanished).
    pub new_total_us: u64,
    /// Baseline call count.
    pub base_count: u64,
    /// New call count.
    pub new_count: u64,
    /// `new / base`; infinity for new paths, 0.0 for vanished ones.
    pub ratio: f64,
    /// True when this path fails the gate.
    pub regressed: bool,
}

/// The full comparison, every surviving path in deterministic order.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Per-path deltas in the baseline tree's DFS order, with
    /// new-only paths appended in the new tree's order.
    pub deltas: Vec<PathDelta>,
    /// Threshold the report was computed with.
    pub threshold: f64,
    /// Noise floor the report was computed with.
    pub min_us: u64,
}

impl DiffReport {
    /// Compares two trees path by path.
    pub fn compare(base: &SpanTree, new: &SpanTree, options: &DiffOptions) -> DiffReport {
        let mut report = DiffReport {
            deltas: Vec::new(),
            threshold: options.threshold,
            min_us: options.min_us,
        };
        for b in &base.nodes {
            let n = new.get(&b.path);
            let new_total = n.map_or(0, |n| n.total_us);
            if b.total_us < options.min_us && new_total < options.min_us {
                continue;
            }
            let ratio = if b.total_us > 0 {
                new_total as f64 / b.total_us as f64
            } else if new_total > 0 {
                f64::INFINITY
            } else {
                0.0
            };
            report.deltas.push(PathDelta {
                path: b.path.clone(),
                base_total_us: b.total_us,
                new_total_us: new_total,
                base_count: b.count,
                new_count: n.map_or(0, |n| n.count),
                ratio,
                regressed: ratio > options.threshold && new_total >= options.min_us,
            });
        }
        for n in &new.nodes {
            if base.get(&n.path).is_some() || n.total_us < options.min_us {
                continue;
            }
            report.deltas.push(PathDelta {
                path: n.path.clone(),
                base_total_us: 0,
                new_total_us: n.total_us,
                base_count: 0,
                new_count: n.count,
                ratio: f64::INFINITY,
                regressed: true,
            });
        }
        report
    }

    /// The regressed deltas, worst ratio first.
    pub fn regressions(&self) -> Vec<&PathDelta> {
        let mut out: Vec<&PathDelta> = self.deltas.iter().filter(|d| d.regressed).collect();
        out.sort_by(|a, b| {
            b.ratio
                .total_cmp(&a.ratio)
                .then_with(|| a.path.cmp(&b.path))
        });
        out
    }

    /// True when any path fails the gate — the CI exit condition.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use crate::tree::TreeOptions;
    use eadrl_obs::{Event, EventKind, Level};

    fn span(path: &str, us: u64) -> String {
        Event::new(path, EventKind::Span, Level::Info)
            .field("duration_us", us)
            .to_json_line()
    }

    fn tree_of(lines: &[String]) -> SpanTree {
        SpanTree::build(
            &Trace::from_jsonl(&lines.join("\n")),
            &TreeOptions::default(),
        )
    }

    #[test]
    fn identical_traces_never_regress() {
        let lines = [span("fit/train", 4000), span("fit", 5000)];
        let report =
            DiffReport::compare(&tree_of(&lines), &tree_of(&lines), &DiffOptions::default());
        assert!(!report.has_regressions());
        assert_eq!(report.deltas.len(), 2);
        assert!(report.deltas.iter().all(|d| d.ratio == 1.0));
    }

    #[test]
    fn doubled_path_fails_and_is_ranked_worst_first() {
        let base = tree_of(&[
            span("fit/train", 4000),
            span("fit/eval", 1000),
            span("fit", 5200),
        ]);
        let slow = tree_of(&[
            span("fit/train", 8000),
            span("fit/eval", 1300),
            span("fit", 9500),
        ]);
        let report = DiffReport::compare(&base, &slow, &DiffOptions::default());
        assert!(report.has_regressions());
        let regressed = report.regressions();
        assert_eq!(regressed[0].path, "fit/train");
        assert!((regressed[0].ratio - 2.0).abs() < 1e-12);
        // eval grew 30% > 15% threshold: also a regression.
        assert!(regressed.iter().any(|d| d.path == "fit/eval"));
    }

    #[test]
    fn noise_floor_skips_tiny_paths_and_new_cheap_paths() {
        let base = tree_of(&[span("fit/tiny", 3), span("fit", 5000)]);
        let new = tree_of(&[
            span("fit/tiny", 9),
            span("fit/extra", 20),
            span("fit", 5000),
        ]);
        let report = DiffReport::compare(&base, &new, &DiffOptions::default());
        // tiny tripled but is under the 100µs floor on both sides;
        // extra is new but cheap. Neither fails, neither is listed.
        assert!(!report.has_regressions());
        assert!(report.deltas.iter().all(|d| d.path == "fit"));
    }

    #[test]
    fn new_hot_path_and_vanished_path_are_handled() {
        let base = tree_of(&[span("fit/old", 2000), span("fit", 5000)]);
        let new = tree_of(&[span("fit/hot.new", 3000), span("fit", 5000)]);
        let report = DiffReport::compare(&base, &new, &DiffOptions::default());
        let hot = report
            .deltas
            .iter()
            .find(|d| d.path == "fit/hot.new")
            .expect("hot");
        assert!(hot.regressed && hot.ratio.is_infinite());
        let old = report
            .deltas
            .iter()
            .find(|d| d.path == "fit/old")
            .expect("old");
        assert!(!old.regressed);
        assert_eq!((old.new_total_us, old.ratio), (0, 0.0));
    }
}
