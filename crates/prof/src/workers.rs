//! Worker-utilization analysis over `par.worker` spans.
//!
//! `eadrl-par` records one `par.worker` span per chunk with the worker
//! index, item count, and queue wait. Aggregating them per worker
//! answers the two questions that matter for the thread pool: **is the
//! work balanced** (imbalance ratio: slowest worker's busy time over
//! the mean) and **is the chunking fair** (item skew: most-loaded
//! worker's items over the mean). Static contiguous chunking should
//! keep both near 1.0; a ratio well above it means one worker is
//! carrying the map.

use crate::trace::Trace;
use eadrl_obs::{EventKind, Value};
use std::collections::BTreeMap;

/// Aggregated load for one worker index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (as recorded in the `worker` field).
    pub worker: u64,
    /// Number of chunks this worker executed.
    pub chunks: u64,
    /// Total items across those chunks.
    pub items: u64,
    /// Summed span durations, µs.
    pub busy_us: u64,
    /// Summed queue wait (spawn → first item), µs.
    pub queue_wait_us: u64,
}

/// The per-worker utilization profile of a trace.
#[derive(Debug, Clone, Default)]
pub struct Utilization {
    /// One entry per worker index seen, ascending.
    pub workers: Vec<WorkerStats>,
}

fn u64_field(event: &eadrl_obs::Event, key: &str) -> u64 {
    match event.get(key) {
        Some(Value::U64(v)) => *v,
        Some(Value::F64(v)) => *v as u64,
        _ => 0,
    }
}

impl Utilization {
    /// Aggregates every `par.worker` span in the trace.
    pub fn analyze(trace: &Trace) -> Utilization {
        let mut by_worker: BTreeMap<u64, WorkerStats> = BTreeMap::new();
        for event in &trace.events {
            if event.kind != EventKind::Span || !event.name_matches("par.worker") {
                continue;
            }
            let worker = u64_field(event, "worker");
            let stats = by_worker.entry(worker).or_insert(WorkerStats {
                worker,
                chunks: 0,
                items: 0,
                busy_us: 0,
                queue_wait_us: 0,
            });
            stats.chunks += 1;
            stats.items += u64_field(event, "items");
            stats.busy_us += u64_field(event, "duration_us");
            stats.queue_wait_us += u64_field(event, "queue_wait_us");
        }
        Utilization {
            workers: by_worker.into_values().collect(),
        }
    }

    /// Total busy time across all workers, µs.
    pub fn total_busy_us(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_us).sum()
    }

    /// Total items processed across all workers.
    pub fn total_items(&self) -> u64 {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Slowest worker's busy time over the mean; 1.0 is perfect
    /// balance, 0.0 means no workers (or an all-idle trace).
    pub fn imbalance_ratio(&self) -> f64 {
        ratio_max_over_mean(self.workers.iter().map(|w| w.busy_us))
    }

    /// Most-loaded worker's item count over the mean item count.
    pub fn item_skew(&self) -> f64 {
        ratio_max_over_mean(self.workers.iter().map(|w| w.items))
    }
}

fn ratio_max_over_mean(values: impl Iterator<Item = u64> + Clone) -> f64 {
    let n = values.clone().count();
    if n == 0 {
        return 0.0;
    }
    let sum: u64 = values.clone().sum();
    if sum == 0 {
        return 0.0;
    }
    let max = values.max().unwrap_or(0);
    max as f64 * n as f64 / sum as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadrl_obs::{Event, Level};

    fn worker_span(worker: u64, items: u64, busy: u64, wait: u64) -> String {
        Event::new(
            "eadrl.fit/par.map/par.worker",
            EventKind::Span,
            Level::Debug,
        )
        .field("duration_us", busy)
        .field("worker", worker)
        .field("items", items)
        .field("queue_wait_us", wait)
        .to_json_line()
    }

    #[test]
    fn aggregates_per_worker_and_computes_imbalance() {
        let text = [
            worker_span(0, 6, 30, 1),
            worker_span(1, 6, 10, 2),
            worker_span(0, 4, 10, 0),
            // Non-worker spans are ignored.
            Event::new("eadrl.fit", EventKind::Span, Level::Info)
                .field("duration_us", 99u64)
                .to_json_line(),
        ]
        .join("\n");
        let util = Utilization::analyze(&Trace::from_jsonl(&text));
        assert_eq!(util.workers.len(), 2);
        assert_eq!(
            util.workers[0],
            WorkerStats {
                worker: 0,
                chunks: 2,
                items: 10,
                busy_us: 40,
                queue_wait_us: 1
            }
        );
        assert_eq!(util.total_busy_us(), 50);
        assert_eq!(util.total_items(), 16);
        // Busy: 40 vs 10, mean 25 → 1.6. Items: 10 vs 6, mean 8 → 1.25.
        assert!((util.imbalance_ratio() - 1.6).abs() < 1e-12);
        assert!((util.item_skew() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero_not_a_panic() {
        let util = Utilization::analyze(&Trace::from_jsonl(""));
        assert!(util.workers.is_empty());
        assert_eq!(util.imbalance_ratio(), 0.0);
        assert_eq!(util.item_skew(), 0.0);
    }
}
