#![allow(clippy::needless_range_loop)] // index loops over multiple parallel arrays read clearer in numeric kernels

//! Dense linear-algebra substrate for the EA-DRL reproduction.
//!
//! The EA-DRL paper's base-model pool contains several estimators that are
//! linear-algebra heavy (Gaussian-process regression, principal-component
//! regression, partial-least-squares regression, ARIMA fitting via least
//! squares).  This crate provides the minimal, dependency-free dense kernels
//! they need:
//!
//! * [`Matrix`] — a row-major `f64` matrix with the usual arithmetic,
//! * [`kernels`] — cache-blocked GEMM/transpose kernels plus the
//!   [`Workspace`] scratch arena behind the allocation-free batched
//!   training path,
//! * [`decompose`] — LU (with partial pivoting), Cholesky and Householder-QR
//!   factorizations with solvers,
//! * [`eigen`] — cyclic-Jacobi eigendecomposition of symmetric matrices,
//! * [`lstsq()`](lstsq::lstsq) — (ridge-)regularized linear least squares,
//! * [`pca`] / [`pls`] — principal-component analysis and NIPALS partial
//!   least squares built on the above.
//!
//! All routines operate on `f64` and are written for correctness and clarity
//! on small/medium problems (the pool models embed time series with k = 5,
//! so design matrices here are thin).

pub mod decompose;
pub mod eigen;
pub mod kernels;
pub mod lstsq;
pub mod matrix;
pub mod pca;
pub mod pls;
pub mod vector;

pub use decompose::{Cholesky, Lu, Qr};
pub use eigen::SymmetricEigen;
pub use kernels::Workspace;
pub use lstsq::{lstsq, ridge};
pub use matrix::Matrix;
pub use pca::Pca;
pub use pls::PlsModel;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected/actual shapes.
        context: String,
    },
    /// The matrix is singular (or numerically so) and cannot be factorized
    /// or solved against.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { context } => {
                write!(f, "shape mismatch: {context}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
