//! 1-D convolution layer (valid padding, stride 1).
//!
//! All arithmetic routes through the `eadrl_linalg` kernels: the
//! single-sample paths gather each receptive field into an `in_ch * k`
//! patch and run a bias-seeded `gemm_acc` (the accumulation chain starts
//! at `b[oc]` and adds products in ascending `(ic, k)` order — the exact
//! per-element chain of the original hand-rolled loops), and the batched
//! training path ([`Conv1d::forward_batch`]) stages every window's
//! receptive fields as an im2col matrix and runs one bias-seeded NT GEMM
//! plus one `gemm_tn_acc` for the weight gradients. The two paths are
//! bitwise-identical; `tests/recurrent_equivalence.rs` proves it.

use crate::activation::Activation;
use crate::init;
use crate::network::Network;
use eadrl_linalg::{kernels, vector};
use eadrl_rng::DetRng;

/// Persistent buffers for the batched conv training path: staged inputs,
/// the im2col receptive-field matrix, pre/post-activation outputs, and the
/// gradient staging. Grown with `Vec::resize` on
/// [`Conv1d::stage_batch`] and reused across minibatches — zero
/// steady-state allocations.
#[derive(Debug, Clone, Default)]
pub struct ConvWorkspace {
    batch: usize,
    in_len: usize,
    out_len: usize,
    in_channels: usize,
    out_channels: usize,
    patch: usize,
    /// Staged inputs, `B x (in_ch * in_len)` (channel-major per sample).
    input: Vec<f64>,
    /// im2col matrix, `(B * out_len) x (in_ch * kernel)`; row `s*T + t`
    /// holds window `s`'s receptive field at output position `t`.
    xc: Vec<f64>,
    /// Post-activation outputs, `(B * out_len) x out_ch`.
    y: Vec<f64>,
    /// Upstream output gradients (staged by the caller), then overwritten
    /// in place with the pre-activation gradients `dz`.
    dy: Vec<f64>,
}

impl ConvWorkspace {
    /// Creates an empty workspace; buffers are sized on
    /// [`Conv1d::stage_batch`].
    pub fn new() -> Self {
        Self::default()
    }

    /// One sample's staged input (`in_ch * in_len`, channel-major).
    pub fn input_mut(&mut self, s: usize) -> &mut [f64] {
        let w = self.in_channels * self.in_len;
        &mut self.input[s * w..(s + 1) * w]
    }

    /// Output row for window `s` at output position `t` (`out_ch` values),
    /// valid after [`Conv1d::forward_batch`].
    pub fn output_row(&self, s: usize, t: usize) -> &[f64] {
        let r = s * self.out_len + t;
        &self.y[r * self.out_channels..(r + 1) * self.out_channels]
    }

    /// Upstream-gradient row for window `s` at output position `t`, staged
    /// by the caller before [`Conv1d::backward_batch_weights_only`].
    pub fn grad_output_row_mut(&mut self, s: usize, t: usize) -> &mut [f64] {
        let r = s * self.out_len + t;
        &mut self.dy[r * self.out_channels..(r + 1) * self.out_channels]
    }
}

/// Reusable buffers for the alloc-free single-window inference path
/// ([`Conv1d::forward_inference_cached`]).
#[derive(Debug, Clone, Default)]
pub struct ConvInferenceCache {
    /// Time-major output, `out_len x out_ch`.
    y: Vec<f64>,
}

/// A 1-D convolution `out[c][t] = act(b[c] + Σ_ci Σ_k w[c][ci][k] · in[ci][t+k])`.
///
/// Valid padding, stride 1: an input of length `L` yields outputs of length
/// `L - kernel + 1`. Inputs and outputs are channel-major
/// (`Vec<channel> -> Vec<time>`). This is the feature extractor of the
/// CNN-LSTM base forecaster.
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    activation: Activation,
    /// Weights laid out `[out_ch][in_ch][k]`.
    w: Vec<f64>,
    b: Vec<f64>,
    grad_w: Vec<f64>,
    grad_b: Vec<f64>,
    cache_input: Vec<Vec<f64>>,
    cache_output: Vec<Vec<f64>>,
}

impl Conv1d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    /// Panics when `kernel == 0`.
    pub fn new(
        rng: &mut DetRng,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        activation: Activation,
    ) -> Self {
        assert!(kernel > 0, "Conv1d kernel must be positive");
        let fan_in = in_channels * kernel;
        let n = out_channels * fan_in;
        let w = match activation {
            Activation::Relu => init::he_uniform(rng, fan_in, n),
            _ => init::xavier_uniform(rng, fan_in, out_channels * kernel, n),
        };
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            activation,
            w,
            b: vec![0.0; out_channels],
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_channels],
            cache_input: Vec::new(),
            cache_output: Vec::new(),
        }
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Output length for an input of length `len` (0 when too short).
    pub fn out_len(&self, len: usize) -> usize {
        (len + 1).saturating_sub(self.kernel)
    }

    fn weight(&self, oc: usize, ic: usize, k: usize) -> f64 {
        self.w[(oc * self.in_channels + ic) * self.kernel + k]
    }

    /// Training forward pass (caches input and output).
    ///
    /// # Panics
    /// Debug-panics when the channel count mismatches or the input is
    /// shorter than the kernel.
    pub fn forward(&mut self, input: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let out = self.forward_inference(input);
        self.cache_input = input.to_vec();
        self.cache_output = out.clone();
        out
    }

    /// Gathers the receptive field at output position `t` into `patch`
    /// (`in_ch * kernel`, matching the weight layout `[ic][k]`).
    fn gather_patch(&self, input: &[Vec<f64>], t: usize, patch: &mut [f64]) {
        for (ic, ich) in input.iter().enumerate() {
            patch[ic * self.kernel..(ic + 1) * self.kernel]
                .copy_from_slice(&ich[t..t + self.kernel]);
        }
    }

    /// Inference-only forward pass.
    ///
    /// Each output column is a bias-seeded `gemm_acc` over the gathered
    /// receptive field: the accumulation chain for `out[oc][t]` starts at
    /// `b[oc]` and adds products in ascending `(ic, k)` order, exactly as
    /// the original scalar loops did.
    pub fn forward_inference(&self, input: &[Vec<f64>]) -> Vec<Vec<f64>> {
        debug_assert_eq!(input.len(), self.in_channels, "Conv1d: channel count");
        let len = input.first().map_or(0, Vec::len);
        debug_assert!(len >= self.kernel, "Conv1d: input shorter than kernel");
        let out_len = self.out_len(len);
        let ick = self.in_channels * self.kernel;
        let mut out = vec![vec![0.0; out_len]; self.out_channels];
        let mut patch = vec![0.0; ick];
        let mut col = vec![0.0; self.out_channels];
        for t in 0..out_len {
            self.gather_patch(input, t, &mut patch);
            col.copy_from_slice(&self.b);
            kernels::gemm_acc(self.out_channels, ick, 1, &self.w, &patch, &mut col);
            for (och, &s) in out.iter_mut().zip(col.iter()) {
                och[t] = self.activation.apply(s);
            }
        }
        out
    }

    /// Backward pass: accumulates parameter gradients and returns input
    /// gradients (channel-major, same shape as the forward input).
    ///
    /// Weight gradients route through `vector::axpy` over the gathered
    /// receptive field (per weight element the contributions stay in
    /// ascending-`t` order). The input-gradient scatter stays scalar: its
    /// writes overlap across output positions, so a col2im GEMM would
    /// reorder the accumulation.
    pub fn backward(&mut self, grad_output: &[Vec<f64>]) -> Vec<Vec<f64>> {
        debug_assert_eq!(grad_output.len(), self.out_channels);
        debug_assert!(
            !self.cache_input.is_empty(),
            "Conv1d backward called before forward"
        );
        let in_len = self.cache_input[0].len();
        let ick = self.in_channels * self.kernel;
        let mut grad_input = vec![vec![0.0; in_len]; self.in_channels];
        let mut patch = vec![0.0; ick];
        let out_len = self.out_len(in_len);
        for t in 0..out_len {
            for (ic, ich) in self.cache_input.iter().enumerate() {
                patch[ic * self.kernel..(ic + 1) * self.kernel]
                    .copy_from_slice(&ich[t..t + self.kernel]);
            }
            for oc in 0..self.out_channels {
                let gy = grad_output[oc][t];
                let y = self.cache_output[oc][t];
                let dz = gy * self.activation.derivative_from_output(y);
                // eadrl-lint: allow(no-float-eq): ReLU subgradient — exact zero means no gradient flows, skip is lossless
                if dz == 0.0 {
                    continue;
                }
                self.grad_b[oc] += dz;
                vector::axpy(dz, &patch, &mut self.grad_w[oc * ick..(oc + 1) * ick]);
                for ic in 0..self.in_channels {
                    for k in 0..self.kernel {
                        grad_input[ic][t + k] += dz * self.weight(oc, ic, k);
                    }
                }
            }
        }
        grad_input
    }

    /// Sizes the workspace for a batch of `batch` windows of length
    /// `in_len` each. Growth-only; re-staging allocates nothing in steady
    /// state.
    pub fn stage_batch(&self, ws: &mut ConvWorkspace, batch: usize, in_len: usize) {
        debug_assert!(in_len >= self.kernel, "Conv1d: input shorter than kernel");
        let out_len = self.out_len(in_len);
        ws.batch = batch;
        ws.in_len = in_len;
        ws.out_len = out_len;
        ws.in_channels = self.in_channels;
        ws.out_channels = self.out_channels;
        ws.patch = self.in_channels * self.kernel;
        ws.input.resize(batch * self.in_channels * in_len, 0.0);
        ws.xc.resize(batch * out_len * ws.patch, 0.0);
        ws.y.resize(batch * out_len * self.out_channels, 0.0);
        ws.dy.resize(batch * out_len * self.out_channels, 0.0);
    }

    /// Batched forward pass over the windows staged in `ws`: one im2col
    /// gather plus one bias-seeded NT GEMM for the whole minibatch.
    /// Output rows land in the workspace time-major per sample
    /// ([`ConvWorkspace::output_row`]); bitwise-identical to running
    /// [`Conv1d::forward`] per sample.
    pub fn forward_batch(&self, ws: &mut ConvWorkspace) {
        let mut span = eadrl_obs::span_at(eadrl_obs::Level::Trace, "nn.conv.forward_batch");
        span.record("rows", ws.batch.into());
        let (b, t_out, ick, oc) = (ws.batch, ws.out_len, ws.patch, self.out_channels);
        let rows = b * t_out;
        for s in 0..b {
            let sample = &ws.input[s * self.in_channels * ws.in_len..];
            for t in 0..t_out {
                let r = (s * t_out + t) * ick;
                for ic in 0..self.in_channels {
                    ws.xc[r + ic * self.kernel..r + (ic + 1) * self.kernel].copy_from_slice(
                        &sample[ic * ws.in_len + t..ic * ws.in_len + t + self.kernel],
                    );
                }
            }
        }
        // Seed every output row with the bias so each element's
        // accumulation chain starts at b[oc], as in the per-sample loop.
        for r in 0..rows {
            ws.y[r * oc..(r + 1) * oc].copy_from_slice(&self.b);
        }
        kernels::gates_gemm_acc(rows, ick, oc, &ws.xc, &self.w, &mut ws.y);
        self.activation.apply_in_place(&mut ws.y[..rows * oc]);
    }

    /// Batched backward pass accumulating *parameter* gradients only; the
    /// caller stages upstream gradients via
    /// [`ConvWorkspace::grad_output_row_mut`]. Input gradients are not
    /// produced — in the CNN-LSTM wiring the convolution is the first
    /// layer, so nothing consumes them (the single-sample
    /// [`Conv1d::backward`] still computes them for gradient checking).
    pub fn backward_batch_weights_only(&mut self, ws: &mut ConvWorkspace) {
        let mut span = eadrl_obs::span_at(eadrl_obs::Level::Trace, "nn.conv.backward_batch");
        span.record("rows", ws.batch.into());
        let (b, t_out, ick, oc) = (ws.batch, ws.out_len, ws.patch, self.out_channels);
        let rows = b * t_out;
        // dz = dy ⊙ act'(y), in place over the staged upstream gradients.
        for (d, &y) in ws.dy[..rows * oc].iter_mut().zip(ws.y[..rows * oc].iter()) {
            *d *= self.activation.derivative_from_output(y);
        }
        // Bias gradients as ascending-row column sums. The per-sample loop
        // skips dz == 0.0 rows; adding them is bit-identical because the
        // partial sums can never be -0.0 (chains start at +0.0 and IEEE
        // addition only yields -0.0 from two negative-zero operands).
        for r in 0..rows {
            let dzr = &ws.dy[r * oc..(r + 1) * oc];
            for (gb, &d) in self.grad_b.iter_mut().zip(dzr.iter()) {
                *gb += d;
            }
        }
        kernels::gemm_tn_acc(rows, oc, ick, &ws.dy, &ws.xc, &mut self.grad_w);
    }

    /// Alloc-free single-window inference for the single-input-channel
    /// case: returns the *time-major* output (`out_len x out_ch` flat),
    /// ready to be consumed as a strided LSTM input sequence. Values are
    /// bitwise-identical to [`Conv1d::forward_inference`] (which is
    /// channel-major).
    pub fn forward_inference_cached<'a>(
        &self,
        window: &[f64],
        cache: &'a mut ConvInferenceCache,
    ) -> &'a [f64] {
        debug_assert_eq!(
            self.in_channels, 1,
            "cached conv inference is single-channel"
        );
        debug_assert!(
            window.len() >= self.kernel,
            "Conv1d: input shorter than kernel"
        );
        let t_out = self.out_len(window.len());
        let oc = self.out_channels;
        cache.y.resize(t_out * oc, 0.0);
        for t in 0..t_out {
            let row = &mut cache.y[t * oc..(t + 1) * oc];
            row.copy_from_slice(&self.b);
            kernels::gemm_acc(
                oc,
                self.kernel,
                1,
                &self.w,
                &window[t..t + self.kernel],
                row,
            );
            self.activation.apply_in_place(row);
        }
        &cache.y[..t_out * oc]
    }
}

impl Network for Conv1d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_length_is_valid_conv() {
        let mut rng = DetRng::seed_from_u64(0);
        let conv = Conv1d::new(&mut rng, 1, 2, 3, Activation::Identity);
        assert_eq!(conv.out_len(5), 3);
        assert_eq!(conv.out_len(3), 1);
        assert_eq!(conv.out_len(2), 0);
        let out = conv.forward_inference(&[vec![1.0, 2.0, 3.0, 4.0, 5.0]]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn identity_kernel_copies_input() {
        let mut rng = DetRng::seed_from_u64(1);
        let mut conv = Conv1d::new(&mut rng, 1, 1, 1, Activation::Identity);
        conv.w = vec![1.0];
        conv.b = vec![0.0];
        let out = conv.forward(&[vec![3.0, -1.0, 4.0]]);
        assert_eq!(out[0], vec![3.0, -1.0, 4.0]);
    }

    #[test]
    fn moving_average_kernel() {
        let mut rng = DetRng::seed_from_u64(2);
        let mut conv = Conv1d::new(&mut rng, 1, 1, 2, Activation::Identity);
        conv.w = vec![0.5, 0.5];
        conv.b = vec![0.0];
        let out = conv.forward(&[vec![1.0, 3.0, 5.0]]);
        assert_eq!(out[0], vec![2.0, 4.0]);
    }

    #[test]
    fn gradcheck_weights_and_inputs() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut conv = Conv1d::new(&mut rng, 2, 2, 2, Activation::Tanh);
        let input = vec![vec![0.2, -0.4, 0.6, 0.1], vec![0.5, 0.3, -0.2, 0.8]];
        let out = conv.forward(&input);
        let ones: Vec<Vec<f64>> = out.iter().map(|c| vec![1.0; c.len()]).collect();
        let gin = conv.backward(&ones);

        let loss = |c: &Conv1d, inp: &[Vec<f64>]| -> f64 {
            c.forward_inference(inp)
                .iter()
                .flat_map(|ch| ch.iter())
                .sum()
        };
        let h = 1e-6;
        // Weight gradients.
        let flat = conv.flat_params();
        let mut grads = Vec::new();
        conv.visit_params(&mut |_p, g| grads.extend_from_slice(g));
        for &idx in &[0usize, 3, 7, flat.len() - 1] {
            let mut up = flat.clone();
            up[idx] += h;
            let mut dn = flat.clone();
            dn[idx] -= h;
            conv.load_flat_params(&up);
            let lu = loss(&conv, &input);
            conv.load_flat_params(&dn);
            let ld = loss(&conv, &input);
            conv.load_flat_params(&flat);
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - grads[idx]).abs() < 1e-5,
                "w[{idx}]: {numeric} vs {}",
                grads[idx]
            );
        }
        // Input gradients.
        for ic in 0..2 {
            for t in 0..4 {
                let mut up = input.clone();
                up[ic][t] += h;
                let mut dn = input.clone();
                dn[ic][t] -= h;
                let numeric = (loss(&conv, &up) - loss(&conv, &dn)) / (2.0 * h);
                assert!(
                    (numeric - gin[ic][t]).abs() < 1e-5,
                    "in[{ic}][{t}]: {numeric} vs {}",
                    gin[ic][t]
                );
            }
        }
    }

    #[test]
    fn batched_forward_and_backward_match_per_sample_bitwise() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut batched = Conv1d::new(&mut rng, 1, 3, 3, Activation::Relu);
        let mut reference = batched.clone();
        let wins: Vec<Vec<f64>> = (0..4)
            .map(|s| {
                (0..7)
                    .map(|t| ((s * 13 + t * 5) % 11) as f64 * 0.3 - 1.2)
                    .collect()
            })
            .collect();
        let t_out = batched.out_len(7);

        let mut ws = ConvWorkspace::new();
        batched.stage_batch(&mut ws, wins.len(), 7);
        for (s, win) in wins.iter().enumerate() {
            ws.input_mut(s).copy_from_slice(win);
        }
        batched.forward_batch(&mut ws);
        // Upstream gradients: arbitrary but deterministic, some zeros.
        for s in 0..wins.len() {
            for t in 0..t_out {
                let row = ws.grad_output_row_mut(s, t);
                for (ocv, g) in row.iter_mut().enumerate() {
                    *g = if (s + t + ocv) % 3 == 0 {
                        0.0
                    } else {
                        0.1 * (s as f64 + 1.0) - 0.05 * (t + ocv) as f64
                    };
                }
            }
        }
        // Per-sample reference over the same data and gradients.
        for (s, win) in wins.iter().enumerate() {
            let out = reference.forward(std::slice::from_ref(win));
            for t in 0..t_out {
                for oc in 0..3 {
                    assert_eq!(ws.output_row(s, t)[oc], out[oc][t], "y s={s} t={t} oc={oc}");
                }
            }
            let gy: Vec<Vec<f64>> = (0..3)
                .map(|oc| {
                    (0..t_out)
                        .map(|t| {
                            if (s + t + oc) % 3 == 0 {
                                0.0
                            } else {
                                0.1 * (s as f64 + 1.0) - 0.05 * (t + oc) as f64
                            }
                        })
                        .collect()
                })
                .collect();
            reference.backward(&gy);
        }
        batched.backward_batch_weights_only(&mut ws);
        assert_eq!(batched.grad_w, reference.grad_w);
        assert_eq!(batched.grad_b, reference.grad_b);
    }

    #[test]
    fn cached_inference_is_bitwise_equal_to_vec_path() {
        let mut rng = DetRng::seed_from_u64(6);
        let conv = Conv1d::new(&mut rng, 1, 4, 2, Activation::Relu);
        let window = [0.4, -0.2, 0.9, 0.0, -0.7, 0.3];
        let mut cache = ConvInferenceCache::default();
        let y = conv.forward_inference_cached(&window, &mut cache);
        let expect = conv.forward_inference(&[window.to_vec()]);
        for t in 0..conv.out_len(window.len()) {
            for oc in 0..4 {
                assert_eq!(y[t * 4 + oc], expect[oc][t], "t={t} oc={oc}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "kernel must be positive")]
    fn zero_kernel_panics() {
        let mut rng = DetRng::seed_from_u64(4);
        let _ = Conv1d::new(&mut rng, 1, 1, 0, Activation::Identity);
    }
}
