//! Repo-owned deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace — weight init, replay
//! sampling, exploration noise, bootstrap resampling, synthetic dataset
//! generation, Monte-Carlo posteriors — draws from [`DetRng`], a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator owned
//! by this repository.
//!
//! # Why not an external `rand` crate?
//!
//! The EA-DRL evaluation protocol (rank rewards, Bayesian sign-rank
//! tests, ablation deltas) is only meaningful when a seed pins the
//! *exact* byte stream: Table II comparisons are re-run across machines
//! and the paper's figures must regenerate bit-identically. External
//! RNG crates explicitly reserve the right to change their `StdRng`
//! stream between versions, which silently re-rolls every seeded
//! experiment on upgrade. Owning the generator makes the stream part of
//! this repo's reproducibility contract:
//!
//! * **The stream is frozen.** `DetRng::seed_from_u64(s)` produces the
//!   same sequence on every platform, architecture, and compiler
//!   version, forever. Changing it is a breaking change to every
//!   recorded experiment and requires regenerating `EXPERIMENTS.md`.
//! * **Zero dependencies.** The workspace builds offline with nothing
//!   but `std`, matching the house style set by `eadrl-obs`.
//!
//! SplitMix64 is statistically solid for simulation workloads (passes
//! BigCrush when used as a 64-bit generator), trivially seedable from a
//! single `u64`, and `Copy`-cheap. It is **not** cryptographically
//! secure; nothing in this workspace needs that.
//!
//! # Example
//!
//! ```
//! use eadrl_rng::DetRng;
//!
//! let mut rng = DetRng::seed_from_u64(42);
//! let unit: f64 = rng.random();            // uniform in [0, 1)
//! let weight = rng.random_range(-0.1..0.1); // uniform in [-0.1, 0.1)
//! let idx = rng.random_range(0..10usize);   // uniform integer in [0, 10)
//! assert!((0.0..1.0).contains(&unit));
//! assert!((-0.1..0.1).contains(&weight));
//! assert!(idx < 10);
//! ```

/// Deterministic SplitMix64 generator.
///
/// The output stream for a given seed is frozen — see the crate docs
/// for the reproducibility contract. Cloning is cheap and forks an
/// identical stream (both copies produce the same subsequent values).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

/// Weyl-sequence increment from the SplitMix64 reference
/// implementation (`0x9E3779B97F4A7C15` = 2^64 / golden ratio).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl DetRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    ///
    /// Distinct seeds — including adjacent ones like `s` and `s ^ 1` —
    /// yield well-separated streams thanks to the SplitMix64 output
    /// mixer.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng {
            state: seed.wrapping_add(GOLDEN_GAMMA),
        }
    }

    /// Advances the state and returns the next 64 raw bits.
    ///
    /// This is the primitive every typed draw below is built on.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws a value of type `T` from its canonical distribution:
    /// `f64`/`f32` uniform in `[0, 1)`, `bool` fair coin, `u64` raw
    /// bits.
    pub fn random<T: Draw>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// Supported ranges: half-open and inclusive integer ranges over
    /// the primitive integer types, and half-open `f64`/`f32` ranges.
    /// Panics if the range is empty — an empty sampling range is a
    /// caller bug, never a data condition.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]` by the
    /// comparison itself: `p <= 0` never fires, `p >= 1` always fires).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Derives an independent substream identified by `index`, without
    /// advancing `self`.
    ///
    /// The substream is a pure function of the parent's current state
    /// and `index` — it does **not** depend on how many substreams were
    /// forked before it or in what order. This is the property parallel
    /// workloads need: a per-chunk/per-chain generator whose draws are
    /// identical no matter how work is split across threads
    /// (`parent.substream(i)` is the same stream whether chunk `i` runs
    /// first, last, or concurrently with its siblings).
    ///
    /// Like the main stream, substreams are part of the frozen
    /// reproducibility contract: the mapping `(state, index) → stream`
    /// must never change.
    #[must_use]
    pub fn substream(&self, index: u64) -> DetRng {
        // Avalanche the parent state through the SplitMix64 output mixer
        // so substreams of adjacent parents are uncorrelated, then place
        // `index` on its own Weyl sequence so adjacent indices land in
        // well-separated seeds.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::seed_from_u64(z ^ index.wrapping_mul(GOLDEN_GAMMA))
    }
}

/// Types that can be drawn from a [`DetRng`] with a canonical
/// distribution. Implemented for `f64`, `f32`, `bool`, and `u64`.
pub trait Draw: Sized {
    /// Draws one value, consuming exactly one `next_u64` call.
    fn draw(rng: &mut DetRng) -> Self;
}

impl Draw for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the full f64
    /// mantissa), via the standard `(bits >> 11) * 2^-53` ladder.
    fn draw(rng: &mut DetRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Draw for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw(rng: &mut DetRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Draw for bool {
    /// Fair coin from the low bit.
    fn draw(rng: &mut DetRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Draw for u64 {
    /// The raw 64-bit output.
    fn draw(rng: &mut DetRng) -> u64 {
        rng.next_u64()
    }
}

/// Ranges a [`DetRng`] can sample uniformly. Implemented for integer
/// `Range`/`RangeInclusive` and float `Range`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample(self, rng: &mut DetRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut DetRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty sampling range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + start as i128;
                v as $t
            }
        }
    )*}
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut DetRng) -> f64 {
        let u: f64 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample(self, rng: &mut DetRng) -> f32 {
        let u: f32 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stream for seed 0 is part of the reproducibility contract
    /// (it equals reference SplitMix64 seeded with `GOLDEN_GAMMA`,
    /// because seeding pre-advances the Weyl state once). If this test
    /// ever fails, every recorded experiment in EXPERIMENTS.md is
    /// invalidated.
    #[test]
    fn stream_is_frozen_for_seed_zero() {
        let mut rng = DetRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(rng.next_u64(), 0xF88B_B8A8_724C_81EC);
        assert_eq!(rng.next_u64(), 0x1B39_896A_51A8_749B);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(1234);
        let mut b = DetRng::seed_from_u64(1234);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_forks_identical_stream() {
        let mut a = DetRng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y), "{y} outside [0,1)");
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        // 20 equal-width bins over [0,1); 10k draws should hit them all.
        let mut rng = DetRng::seed_from_u64(5);
        let mut bins = [0usize; 20];
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            bins[(x * 20.0) as usize] += 1;
        }
        assert!(bins.iter().all(|&c| c > 300), "skewed bins: {bins:?}");
    }

    #[test]
    fn integer_ranges_stay_in_bounds_and_cover() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));

        let mut seen_inc = [false; 11];
        for _ in 0..1_000 {
            let v = rng.random_range(0..=10usize);
            seen_inc[v] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));

        for _ in 0..1_000 {
            let v = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = DetRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = DetRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert_eq!((0..100).filter(|_| rng.random_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.random_bool(1.5)).count(), 100);
    }

    #[test]
    #[should_panic(expected = "empty sampling range")]
    fn empty_range_panics() {
        let mut rng = DetRng::seed_from_u64(1);
        let _ = rng.random_range(3..3usize);
    }

    /// Substreams for seed 0 are part of the frozen reproducibility
    /// contract, same as the main stream: the mapping must never change.
    #[test]
    fn substreams_are_frozen_for_seed_zero() {
        let rng = DetRng::seed_from_u64(0);
        assert_eq!(rng.substream(0).next_u64(), 0xB382_A305_F441_4F5E);
        assert_eq!(rng.substream(1).next_u64(), 0x20A4_03A0_B1A9_1D80);
        assert_eq!(rng.substream(2).next_u64(), 0x1C40_0665_0BA6_5785);
    }

    #[test]
    fn substream_does_not_advance_parent() {
        let mut a = DetRng::seed_from_u64(9);
        let mut b = DetRng::seed_from_u64(9);
        let _ = a.substream(3);
        let _ = a.substream(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substreams_depend_only_on_state_and_index() {
        let parent = DetRng::seed_from_u64(21);
        // Forking in any order, any number of times, yields the same
        // stream per index.
        let mut first = parent.substream(5);
        let _ = parent.substream(0);
        let mut again = parent.substream(5);
        for _ in 0..32 {
            assert_eq!(first.next_u64(), again.next_u64());
        }
    }

    #[test]
    fn substreams_with_distinct_indices_diverge() {
        let parent = DetRng::seed_from_u64(3);
        let mut a = parent.substream(0);
        let mut b = parent.substream(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
