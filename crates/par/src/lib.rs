//! # eadrl-par — deterministic std-only thread pool
//!
//! A zero-dependency parallel map whose output is **bitwise identical**
//! to the serial computation at every thread count. The workspace's
//! embarrassingly parallel hot paths — base-model pool fitting, the
//! rolling pool-prediction matrix, the 16-method evaluation loop, the
//! Bayes-sign-test Monte-Carlo chains — all funnel through [`par_map`],
//! so the repo's determinism contract (frozen `eadrl_rng::DetRng`
//! stream, byte-identical quickstart outputs) survives parallelism.
//!
//! ## Determinism model
//!
//! [`par_map`] applies a pure-per-item function to each element of an
//! owned `Vec` and merges results **strictly by input index**. Work is
//! split into contiguous chunks, one per worker, with a *static*
//! assignment (no work stealing): which item runs on which thread is a
//! function of `(items.len(), workers)` only, never of timing. Because
//! `f` receives ownership of its item and may not share mutable state
//! (the `Fn` + [`Sync`] bounds enforce this), the result for item `i`
//! cannot depend on scheduling — so the merged output equals the serial
//! `items.into_iter().map(f).collect()` bit for bit.
//!
//! Code that draws randomness inside `f` must derive its generator from
//! the item index (`DetRng::substream` — state and
//! index in, stream out), never from a generator threaded *across*
//! items; `crates/core/tests/par_determinism.rs` and this crate's
//! property suite enforce the contract end to end.
//!
//! ## Thread count
//!
//! `EADRL_PAR_THREADS` selects the worker count; unset (or unparsable)
//! falls back to [`std::thread::available_parallelism`]. `1` forces the
//! serial fallback, which runs **the identical code path** (same
//! chunking, same per-item panic containment, same index merge) on the
//! calling thread — there is no separate serial implementation to drift
//! out of sync. [`par_map_with`] pins the count explicitly (used by the
//! differential tests so they need no env mutation).
//!
//! ## Panic containment
//!
//! A panic inside `f` is caught at the owning worker, the batch is
//! abandoned, and [`par_map`] returns [`ParError::Panic`] carrying the
//! *originating input index* — the smallest panicking index across
//! workers, so even the error is deterministic. Workers are scoped
//! threads ([`std::thread::scope`]): every worker is joined before
//! `par_map` returns, no thread outlives the call, and the pool is
//! trivially usable for the next call (there is no poisoned state to
//! clear). Items not yet processed when a batch is abandoned are
//! dropped normally (no leaks — asserted by the fault-injection tests).
//!
//! ## Telemetry
//!
//! Each call opens a `par.map` span (debug: `items`, `workers`,
//! `chunk`); each worker runs its chunk inside a `par.worker` span
//! (debug: `worker`, `items`, `queue_wait_us` — the spawn-to-start
//! latency), and a contained panic emits `par.panic` (warn: `index`).
//! Counters `par.maps_total` / `par.tasks_total` accumulate in the
//! global registry.
//!
//! Worker telemetry is **deterministically ordered**: every worker runs
//! under an [`eadrl_obs::worker_context`] that (a) stamps its events
//! with `thread = 1 + worker index`, (b) inherits the caller's span
//! path so worker spans nest under `par.map` instead of becoming
//! orphaned roots, and (c) buffers events thread-locally. After the
//! join, buffers are flushed in worker-index order — since chunks are
//! contiguous and ascending, the flushed trace is ordered exactly like
//! the serial one, at every thread count. The serial fallback runs the
//! identical context + buffer path inline.

use eadrl_obs::Level;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Environment variable selecting the worker count ("1" = serial).
pub const THREADS_ENV: &str = "EADRL_PAR_THREADS";

/// Failure of a parallel batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// The mapped function panicked on the item at `index` (the
    /// smallest panicking input index — deterministic across thread
    /// counts and interleavings).
    Panic {
        /// Input index of the item whose closure panicked.
        index: usize,
        /// Panic payload, when it was a `&str`/`String` message.
        message: String,
    },
    /// A worker thread terminated without delivering its results and
    /// without a caught panic. Not reachable through the public API
    /// (workers catch all unwinds); kept so the merge step can report
    /// the condition instead of panicking if an internal invariant is
    /// ever broken.
    WorkerLost {
        /// Input index of the first item with no result.
        index: usize,
    },
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::Panic { index, message } => {
                write!(
                    f,
                    "parallel task panicked at input index {index}: {message}"
                )
            }
            ParError::WorkerLost { index } => {
                write!(f, "worker delivered no result for input index {index}")
            }
        }
    }
}

impl std::error::Error for ParError {}

/// Resolves the worker count: `EADRL_PAR_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (and 1 if even that is unavailable).
#[must_use]
pub fn thread_count() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eadrl_obs::warn("par.threads.invalid", &[("raw", raw.as_str().into())]);
                default_threads()
            }
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parallel map with deterministic, serial-identical output: applies
/// `f` to every item and returns the results in input order. Worker
/// count comes from [`thread_count`].
///
/// # Errors
/// [`ParError::Panic`] when `f` panics on some item (smallest such
/// input index).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Result<Vec<R>, ParError>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (bypasses the
/// environment). `threads == 1` runs the identical code path serially
/// on the calling thread.
///
/// # Errors
/// [`ParError::Panic`] when `f` panics on some item.
pub fn par_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Result<Vec<R>, ParError>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_indexed_with(threads, items, |_, item| f(item))
}

/// Index-aware parallel map: `f` receives `(input_index, item)`. This
/// is the right entry point for stochastic tasks — derive the task's
/// RNG from the index (`eadrl_rng::DetRng::substream`) and the draw
/// stream is independent of the thread count.
///
/// # Errors
/// [`ParError::Panic`] when `f` panics on some item.
pub fn par_map_indexed<T, R, F>(items: Vec<T>, f: F) -> Result<Vec<R>, ParError>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_indexed_with(thread_count(), items, f)
}

/// [`par_map_indexed`] with an explicit worker count.
///
/// # Errors
/// [`ParError::Panic`] when `f` panics on some item.
pub fn par_map_indexed_with<T, R, F>(
    threads: usize,
    items: Vec<T>,
    f: F,
) -> Result<Vec<R>, ParError>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    let mut span = eadrl_obs::span_at(Level::Debug, "par.map");
    span.record("items", n.into());
    span.record("workers", workers.into());
    span.record("chunk", n.div_ceil(workers.max(1)).into());
    eadrl_obs::counter("par.maps_total").inc();
    eadrl_obs::counter("par.tasks_total").add(n as u64);
    if n == 0 {
        return Ok(Vec::new());
    }
    // Captured once, before any worker runs: the span path workers
    // inherit (so their spans nest here identically at every thread
    // count) and whether their telemetry should be buffered at all.
    let parent_path = eadrl_obs::current_span_path();
    let buffer = eadrl_obs::level().is_some();

    // Static contiguous chunking: worker w owns items
    // [w*base + min(w, extra) ..], sizes differing by at most one.
    // The assignment depends only on (n, workers), never on timing.
    let base = n / workers;
    let extra = n % workers;
    let mut chunks: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter().enumerate();
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        chunks.push(iter.by_ref().take(len).collect());
    }

    let outcomes: Vec<ChunkOutcome<R>> = if workers == 1 {
        // Serial fallback: the identical per-chunk code path (context,
        // buffering, span, containment), run inline — no spawn.
        chunks
            .into_iter()
            .enumerate()
            .map(|(w, chunk)| {
                let (outcome, events) =
                    run_chunk(w, chunk, &f, None, parent_path.as_deref(), buffer);
                eadrl_obs::emit_batch(events);
                outcome
            })
            .collect()
    } else {
        // Debug-gated so the clock is never read when telemetry is off
        // (which also keeps this crate runnable under Miri isolation).
        // eadrl-lint: allow(determinism): queue-wait telemetry only — the timestamp never reaches a result
        let spawned_at = eadrl_obs::enabled(Level::Debug).then(std::time::Instant::now);
        let batches: Vec<(ChunkOutcome<R>, Vec<eadrl_obs::Event>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .enumerate()
                .map(|(w, chunk)| {
                    let f = &f;
                    let parent = parent_path.as_deref();
                    scope.spawn(move || run_chunk(w, chunk, f, spawned_at, parent, buffer))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        (
                            ChunkOutcome {
                                results: Vec::new(),
                                panic: None,
                            },
                            Vec::new(),
                        )
                    })
                })
                .collect()
        });
        // Flush worker buffers in worker-index order: chunks are
        // contiguous ascending, so this equals the serial trace order.
        batches
            .into_iter()
            .map(|(outcome, events)| {
                eadrl_obs::emit_batch(events);
                outcome
            })
            .collect()
    };

    // Merge strictly by input index. Chunks are contiguous and ordered,
    // so this is a flatten — slots make the invariant explicit and turn
    // any violation into a typed error rather than wrong output.
    let mut first_panic: Option<(usize, String)> = None;
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for outcome in outcomes {
        if let Some((index, message)) = outcome.panic {
            let sooner = first_panic.as_ref().is_none_or(|(i, _)| index < *i);
            if sooner {
                first_panic = Some((index, message));
            }
        }
        for (index, value) in outcome.results {
            slots[index] = Some(value);
        }
    }
    if let Some((index, message)) = first_panic {
        eadrl_obs::warn("par.panic", &[("index", index.into())]);
        return Err(ParError::Panic { index, message });
    }
    let mut out = Vec::with_capacity(n);
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(value) => out.push(value),
            None => return Err(ParError::WorkerLost { index }),
        }
    }
    Ok(out)
}

/// What one worker hands back: results for its chunk prefix, plus the
/// panic that interrupted it, if any.
struct ChunkOutcome<R> {
    results: Vec<(usize, R)>,
    panic: Option<(usize, String)>,
}

/// Runs one worker's chunk inside an [`eadrl_obs::worker_context`] and a
/// `par.worker` span, returning the outcome plus the worker's buffered
/// telemetry (empty when `buffer` is off). A contained item panic still
/// returns the buffer — the trace up to the failure is kept.
fn run_chunk<T, R, F>(
    worker: usize,
    chunk: Vec<(usize, T)>,
    f: &F,
    spawned_at: Option<std::time::Instant>,
    parent_path: Option<&str>,
    buffer: bool,
) -> (ChunkOutcome<R>, Vec<eadrl_obs::Event>)
where
    F: Fn(usize, T) -> R,
{
    let mut ctx = eadrl_obs::worker_context(worker as u64 + 1, parent_path, buffer);
    let outcome = {
        let mut span = eadrl_obs::span_at(Level::Debug, "par.worker");
        span.record("worker", worker.into());
        span.record("items", chunk.len().into());
        if span.is_recording() {
            let queue_wait_us = spawned_at.map_or(0, |t| t.elapsed().as_micros() as u64);
            span.record("queue_wait_us", queue_wait_us.into());
        }
        run_items(chunk, f)
    };
    let events = ctx.take_buffered();
    (outcome, events)
}

fn run_items<T, R, F>(chunk: Vec<(usize, T)>, f: &F) -> ChunkOutcome<R>
where
    F: Fn(usize, T) -> R,
{
    let mut results = Vec::with_capacity(chunk.len());
    for (index, item) in chunk {
        match catch_unwind(AssertUnwindSafe(|| f(index, item))) {
            Ok(value) => results.push((index, value)),
            Err(payload) => {
                // Abandon the rest of the chunk: the remaining items
                // drop here, the completed prefix is still reported so
                // the caller sees a consistent (index → result) map.
                return ChunkOutcome {
                    results,
                    panic: Some((index, panic_message(payload.as_ref()))),
                };
            }
        }
    }
    ChunkOutcome {
        results,
        panic: None,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order_at_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            let got = par_map_with(threads, items.clone(), |x| x * x + 1).expect("no panics");
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u64> = par_map_with(4, Vec::<u64>::new(), |x| x).expect("no panics");
        assert!(got.is_empty());
    }

    #[test]
    fn single_item_runs_serially() {
        let got = par_map_with(8, vec![41u64], |x| x + 1).expect("no panics");
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn indexed_variant_sees_input_indices() {
        let got = par_map_indexed_with(3, vec!["a", "b", "c", "d"], |i, s| format!("{i}{s}"))
            .expect("no panics");
        assert_eq!(got, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn panic_is_contained_with_smallest_index() {
        // Two panicking items in different chunks: index 2 must win
        // regardless of which worker finishes first.
        for threads in [1, 2, 4] {
            let err = par_map_with(threads, (0..16u64).collect(), |x| {
                assert!(x != 2 && x != 11, "boom at {x}");
                x
            })
            .expect_err("must fail");
            assert_eq!(
                err,
                ParError::Panic {
                    index: 2,
                    message: "boom at 2".to_string()
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn pool_is_usable_after_a_panic() {
        let _ = par_map_with(4, vec![1u64], |_| -> u64 { panic!("once") });
        let got = par_map_with(4, vec![1u64, 2, 3], |x| x * 10).expect("pool must stay usable");
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }
}
