//! Fully-connected layer with a fused activation.

use crate::activation::Activation;
use crate::init;
use crate::network::Network;
use eadrl_linalg::kernels;
use eadrl_linalg::Matrix;
use eadrl_rng::DetRng;

/// Persistent per-layer scratch for the batched compute path.
///
/// Every buffer is reshaped in place on use, so after the first call at a
/// given batch size the layer performs **zero heap allocations** per
/// forward/backward (asserted by the counting-allocator test in
/// `crates/nn/tests/alloc.rs`). The per-sample API is the batch-of-1 case
/// over the same buffers.
#[derive(Debug, Clone, Default)]
struct BatchCache {
    /// Cached input rows (`batch x in_dim`) for the backward pass.
    input: Matrix,
    /// Cached post-activation output rows (`batch x out_dim`).
    output: Matrix,
    /// `Wᵀ` (`in_dim x out_dim`), refreshed each forward so the GEMM can
    /// stream `X · Wᵀ` with unit stride on both operands.
    wt: Vec<f64>,
    /// Pre-activation gradient `dZ` (`batch x out_dim`).
    dz: Matrix,
    /// Input gradient rows (`batch x in_dim`) returned by backward.
    grad_input: Matrix,
}

/// A dense layer `y = act(W x + b)`.
///
/// `W` is stored row-major with shape `(out, in)`. The layer caches its last
/// input and output batch so [`Dense::backward`] / [`Dense::backward_batch`]
/// can run without re-computing the forward pass; gradients accumulate into
/// `grad_w`/`grad_b` until [`Network::zero_grad`].
///
/// The batched entry points ([`forward_batch`](Self::forward_batch),
/// [`backward_batch`](Self::backward_batch)) process a `Matrix` whose rows
/// are samples through one GEMM per pass; the per-sample methods are the
/// batch-of-1 case over the same kernels and scratch buffers, so both paths
/// are bitwise-identical by construction (see `eadrl_linalg::kernels` for
/// the accumulation-order argument).
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f64>,
    b: Vec<f64>,
    activation: Activation,
    grad_w: Vec<f64>,
    grad_b: Vec<f64>,
    batch: BatchCache,
}

impl Dense {
    /// Creates a layer with activation-appropriate initialization
    /// (He for ReLU, Xavier otherwise) and zero biases.
    pub fn new(rng: &mut DetRng, in_dim: usize, out_dim: usize, activation: Activation) -> Self {
        let n = in_dim * out_dim;
        let w = match activation {
            Activation::Relu => init::he_uniform(rng, in_dim, n),
            _ => init::xavier_uniform(rng, in_dim, out_dim, n),
        };
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            activation,
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_dim],
            batch: BatchCache::default(),
        }
    }

    /// Creates a layer whose weights and biases are drawn from
    /// `U(-scale, scale)` — DDPG's near-zero final-layer initialization.
    pub fn new_small(
        rng: &mut DetRng,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        scale: f64,
    ) -> Self {
        let n = in_dim * out_dim;
        Dense {
            in_dim,
            out_dim,
            w: init::small_uniform(rng, scale, n),
            b: init::small_uniform(rng, scale, out_dim),
            activation,
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_dim],
            batch: BatchCache::default(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Mutable access to the bias vector (informed initialization).
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.b
    }

    /// Forward pass; caches input and output for [`Dense::backward`].
    ///
    /// This is the batch-of-1 case of [`forward_batch`](Self::forward_batch):
    /// the input is staged as a one-row matrix and runs through the same
    /// kernels and scratch buffers.
    pub fn forward(&mut self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.in_dim, "Dense forward: input dim");
        self.batch.input.resize(1, self.in_dim);
        self.batch.input.data_mut().copy_from_slice(input);
        self.forward_batch_cached();
        self.batch.output.row(0).to_vec()
    }

    /// Batched forward pass over `input` rows (`batch x in_dim`); caches
    /// the batch for [`backward_batch`](Self::backward_batch) and returns
    /// the output rows (`batch x out_dim`).
    ///
    /// Allocation-free at steady state: all scratch lives in reused,
    /// reshaped-in-place buffers.
    pub fn forward_batch(&mut self, input: &Matrix) -> &Matrix {
        debug_assert_eq!(input.cols(), self.in_dim, "Dense forward_batch: input dim");
        self.batch.input.resize(input.rows(), self.in_dim);
        self.batch.input.data_mut().copy_from_slice(input.data());
        self.forward_batch_cached();
        &self.batch.output
    }

    /// Runs the forward pass on the already-staged `batch.input`.
    ///
    /// `out = act(X · Wᵀ + b)`: per output element the GEMM accumulates
    /// products in ascending input-index order from zero and the bias is
    /// added afterwards — bitwise the same value as the per-sample
    /// `b[j] + dot(w_row, x)` (IEEE addition is commutative).
    fn forward_batch_cached(&mut self) {
        let n = self.batch.input.rows();
        self.batch.wt.resize(self.in_dim * self.out_dim, 0.0);
        kernels::transpose(self.out_dim, self.in_dim, &self.w, &mut self.batch.wt);
        self.batch.output.resize(n, self.out_dim);
        kernels::gemm(
            n,
            self.in_dim,
            self.out_dim,
            self.batch.input.data(),
            &self.batch.wt,
            self.batch.output.data_mut(),
        );
        for r in 0..n {
            for (o, &bj) in self.batch.output.row_mut(r).iter_mut().zip(self.b.iter()) {
                *o += bj;
            }
        }
        self.activation.apply_in_place(self.batch.output.data_mut());
    }

    /// Forward pass without caching (inference-only; cheaper and leaves the
    /// training caches untouched).
    pub fn forward_inference(&self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.in_dim, "Dense forward: input dim");
        let mut out = self.b.clone();
        for (o, wrow) in out.iter_mut().zip(self.w.chunks_exact(self.in_dim)) {
            *o += eadrl_linalg::vector::dot(wrow, input);
        }
        self.activation.apply_in_place(&mut out);
        out
    }

    /// Alloc-free variant of [`Dense::forward_inference`]: writes the
    /// output into a caller-provided buffer (`out_dim` values,
    /// bitwise-identical to the allocating path).
    pub fn forward_inference_into(&self, input: &[f64], out: &mut [f64]) {
        debug_assert_eq!(input.len(), self.in_dim, "Dense forward: input dim");
        debug_assert_eq!(out.len(), self.out_dim, "Dense forward: output dim");
        out.copy_from_slice(&self.b);
        for (o, wrow) in out.iter_mut().zip(self.w.chunks_exact(self.in_dim)) {
            *o += eadrl_linalg::vector::dot(wrow, input);
        }
        self.activation.apply_in_place(out);
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// The batch-of-1 case of [`backward_batch`](Self::backward_batch).
    ///
    /// # Panics
    /// Debug-panics when called before [`Dense::forward`] or with a
    /// mismatched gradient length.
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        debug_assert_eq!(grad_output.len(), self.out_dim, "Dense backward: dim");
        debug_assert_eq!(
            self.batch.input.shape(),
            (1, self.in_dim),
            "Dense backward called before forward"
        );
        self.batch.dz.resize(1, self.out_dim);
        self.batch.dz.data_mut().copy_from_slice(grad_output);
        self.backward_batch_cached();
        self.batch.grad_input.row(0).to_vec()
    }

    /// Batched backward pass: `grad_output` rows (`batch x out_dim`) must
    /// match the batch of the preceding [`forward_batch`](Self::forward_batch)
    /// call. Accumulates `grad_w`/`grad_b` over the whole batch in sample
    /// order and returns the input-gradient rows (`batch x in_dim`).
    ///
    /// # Panics
    /// Debug-panics when called before a forward pass or with a
    /// mismatched gradient shape.
    pub fn backward_batch(&mut self, grad_output: &Matrix) -> &Matrix {
        debug_assert_eq!(
            grad_output.shape(),
            (self.batch.input.rows(), self.out_dim),
            "Dense backward_batch called with a shape not matching the cached forward batch"
        );
        self.batch.dz.resize(grad_output.rows(), self.out_dim);
        self.batch.dz.data_mut().copy_from_slice(grad_output.data());
        self.backward_batch_cached();
        &self.batch.grad_input
    }

    /// Batched backward pass that accumulates `grad_w`/`grad_b` but skips
    /// the input-gradient GEMM. Only valid for a network's *first* layer,
    /// where nothing consumes the input gradient (training loops discard
    /// it); parameter gradients are bitwise identical to
    /// [`Dense::backward_batch`].
    ///
    /// # Panics
    /// Debug-panics when called before a forward pass or with a
    /// mismatched gradient shape.
    pub fn backward_batch_weights_only(&mut self, grad_output: &Matrix) {
        debug_assert_eq!(
            grad_output.shape(),
            (self.batch.input.rows(), self.out_dim),
            "Dense backward_batch_weights_only called with a shape not matching the cached forward batch"
        );
        self.batch.dz.resize(grad_output.rows(), self.out_dim);
        self.batch.dz.data_mut().copy_from_slice(grad_output.data());
        let n = self.batch.dz.rows();
        self.chain_dz_through_activation();
        for s in 0..n {
            for (gb, &dz) in self.grad_b.iter_mut().zip(self.batch.dz.row(s).iter()) {
                *gb += dz;
            }
        }
        kernels::gemm_tn_acc(
            n,
            self.out_dim,
            self.in_dim,
            self.batch.dz.data(),
            self.batch.input.data(),
            &mut self.grad_w,
        );
    }

    /// Batched backward pass computing only the input gradients, leaving
    /// `grad_w`/`grad_b` untouched. For callers that differentiate
    /// *through* a network without training it (the DDPG actor update
    /// backpropagates through the critic purely to reach the action
    /// inputs), this skips the weight-gradient GEMM and bias accumulation
    /// entirely. The returned input gradients are bitwise identical to
    /// [`Dense::backward_batch`].
    ///
    /// # Panics
    /// Debug-panics when called before a forward pass or with a
    /// mismatched gradient shape.
    pub fn backward_batch_input_only(&mut self, grad_output: &Matrix) -> &Matrix {
        debug_assert_eq!(
            grad_output.shape(),
            (self.batch.input.rows(), self.out_dim),
            "Dense backward_batch_input_only called with a shape not matching the cached forward batch"
        );
        self.batch.dz.resize(grad_output.rows(), self.out_dim);
        self.batch.dz.data_mut().copy_from_slice(grad_output.data());
        self.chain_dz_through_activation();
        self.compute_grad_input();
        &self.batch.grad_input
    }

    /// Runs the backward pass on the already-staged `batch.dz`.
    ///
    /// Three passes, each accumulating per element in the exact order the
    /// per-sample loop would (samples ascending, then output index, then
    /// input index): `dZ = dY ⊙ act'(Y)`, `grad_b[j] += Σ_s dZ[s,j]`,
    /// `grad_W += dZᵀ · X` (via [`kernels::gemm_tn_acc`]), and
    /// `grad_X = dZ · W` (via [`kernels::gemm`]).
    fn backward_batch_cached(&mut self) {
        let n = self.batch.dz.rows();
        self.chain_dz_through_activation();
        // Bias gradient: samples outer, outputs inner — per-sample order.
        // No zero-skip here: adding an exact zero is bit-identical (the
        // accumulator never holds -0.0 after zero_grad), and the
        // branch-free loop auto-vectorizes.
        for s in 0..n {
            for (gb, &dz) in self.grad_b.iter_mut().zip(self.batch.dz.row(s).iter()) {
                *gb += dz;
            }
        }
        kernels::gemm_tn_acc(
            n,
            self.out_dim,
            self.in_dim,
            self.batch.dz.data(),
            self.batch.input.data(),
            &mut self.grad_w,
        );
        self.compute_grad_input();
    }

    /// `dZ = dY ⊙ act'(Y)` on the staged `batch.dz` (the enum is hoisted
    /// so the match is loop-invariant and the loop can vectorize).
    fn chain_dz_through_activation(&mut self) {
        let activation = self.activation;
        for (d, &y) in self
            .batch
            .dz
            .data_mut()
            .iter_mut()
            .zip(self.batch.output.data().iter())
        {
            *d *= activation.derivative_from_output(y);
        }
    }

    /// `grad_X = dZ · W` (via [`kernels::gemm`]) into the persistent cache.
    fn compute_grad_input(&mut self) {
        let n = self.batch.dz.rows();
        self.batch.grad_input.resize(n, self.in_dim);
        kernels::gemm(
            n,
            self.out_dim,
            self.in_dim,
            self.batch.dz.data(),
            &self.w,
            self.batch.grad_input.data_mut(),
        );
    }

    /// Output rows of the last `forward`/`forward_batch` call.
    pub fn batch_output(&self) -> &Matrix {
        &self.batch.output
    }

    /// Input-gradient rows of the last `backward`/`backward_batch` call.
    pub fn batch_grad_input(&self) -> &Matrix {
        &self.batch.grad_input
    }
}

impl Network for Dense {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }
}

impl crate::network::BatchNetwork for Dense {
    fn forward_batch(&mut self, input: &Matrix) -> &Matrix {
        Dense::forward_batch(self, input)
    }

    fn backward_batch(&mut self, grad_output: &Matrix) -> &Matrix {
        Dense::backward_batch(self, grad_output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(act: Activation) -> Dense {
        let mut rng = DetRng::seed_from_u64(42);
        Dense::new(&mut rng, 3, 2, act)
    }

    #[test]
    fn forward_computes_affine_map() {
        let mut d = layer(Activation::Identity);
        // Overwrite weights with known values.
        d.w = vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0];
        d.b = vec![0.5, -0.5];
        let y = d.forward(&[2.0, 3.0, 4.0]);
        assert_eq!(y, vec![2.5, 6.5]);
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut d = layer(Activation::Tanh);
        let x = [0.3, -0.7, 1.1];
        let a = d.forward(&x);
        let b = d.forward_inference(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn forward_batch_rows_match_per_sample_forward() {
        let mut d = layer(Activation::Relu);
        let xs = [[0.3, -0.7, 1.1], [0.0, 2.0, -0.5], [1.0, 1.0, 1.0]];
        let per_sample: Vec<Vec<f64>> = xs.iter().map(|x| d.forward_inference(x)).collect();
        let input = Matrix::from_rows(&xs.iter().map(|x| x.to_vec()).collect::<Vec<_>>()).unwrap();
        let out = d.forward_batch(&input);
        for (r, expect) in per_sample.iter().enumerate() {
            assert_eq!(out.row(r), expect.as_slice(), "row {r}");
        }
    }

    #[test]
    fn backward_batch_accumulates_same_grads_as_per_sample_loop() {
        let xs = [[0.4, -0.2, 0.9], [0.0, 1.5, -1.0]];
        let gs = [[1.0, -0.5], [0.25, 2.0]];

        let mut per = layer(Activation::Tanh);
        let mut per_gin = Vec::new();
        for (x, g) in xs.iter().zip(gs.iter()) {
            per.forward(x);
            per_gin.push(per.backward(g));
        }

        let mut bat = layer(Activation::Tanh);
        let input = Matrix::from_rows(&xs.iter().map(|x| x.to_vec()).collect::<Vec<_>>()).unwrap();
        let gout = Matrix::from_rows(&gs.iter().map(|g| g.to_vec()).collect::<Vec<_>>()).unwrap();
        bat.forward_batch(&input);
        let gin = bat.backward_batch(&gout);
        for (r, expect) in per_gin.iter().enumerate() {
            assert_eq!(gin.row(r), expect.as_slice(), "grad_input row {r}");
        }
        assert_eq!(per.grad_w, bat.grad_w, "grad_w must match bitwise");
        assert_eq!(per.grad_b, bat.grad_b, "grad_b must match bitwise");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut d = layer(Activation::Tanh);
        let x = [0.4, -0.2, 0.9];
        // Loss = sum of outputs; grad_output = 1s.
        let y = d.forward(&x);
        let _ = y;
        let gin = d.backward(&[1.0, 1.0]);

        let h = 1e-6;
        // Check dLoss/dw for a few weights.
        for &wi in &[0usize, 2, 4, 5] {
            let orig = d.w[wi];
            d.w[wi] = orig + h;
            let up: f64 = d.forward_inference(&x).iter().sum();
            d.w[wi] = orig - h;
            let dn: f64 = d.forward_inference(&x).iter().sum();
            d.w[wi] = orig;
            let numeric = (up - dn) / (2.0 * h);
            assert!(
                (numeric - d.grad_w[wi]).abs() < 1e-5,
                "w[{wi}]: {numeric} vs {}",
                d.grad_w[wi]
            );
        }
        // Check dLoss/dx.
        for i in 0..3 {
            let mut xp = x;
            xp[i] += h;
            let up: f64 = d.forward_inference(&xp).iter().sum();
            xp[i] -= 2.0 * h;
            let dn: f64 = d.forward_inference(&xp).iter().sum();
            let numeric = (up - dn) / (2.0 * h);
            assert!((numeric - gin[i]).abs() < 1e-5, "x[{i}]");
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut d = layer(Activation::Identity);
        let x = [1.0, 1.0, 1.0];
        d.forward(&x);
        d.backward(&[1.0, 0.0]);
        let g1 = d.grad_w[0];
        d.forward(&x);
        d.backward(&[1.0, 0.0]);
        assert!((d.grad_w[0] - 2.0 * g1).abs() < 1e-12);
        d.zero_grad();
        assert_eq!(d.grad_w[0], 0.0);
        assert_eq!(d.grad_b[0], 0.0);
    }

    #[test]
    fn param_count_and_flat_roundtrip() {
        let mut d = layer(Activation::Relu);
        assert_eq!(d.param_count(), 3 * 2 + 2);
        let flat = d.flat_params();
        let mut d2 = layer(Activation::Relu);
        d2.load_flat_params(&flat);
        assert_eq!(d2.flat_params(), flat);
    }

    #[test]
    fn soft_update_moves_toward_source() {
        let mut d = layer(Activation::Identity);
        let source = vec![1.0; d.param_count()];
        let before = d.flat_params();
        d.soft_update_from(&source, 0.5);
        let after = d.flat_params();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((a - (0.5 * 1.0 + 0.5 * b)).abs() < 1e-12);
        }
    }

    #[test]
    fn clip_grad_norm_bounds_gradients() {
        let mut d = layer(Activation::Identity);
        d.forward(&[10.0, 10.0, 10.0]);
        d.backward(&[100.0, 100.0]);
        d.clip_grad_norm(1.0);
        assert!(d.grad_norm() <= 1.0 + 1e-9);
    }
}
