//! Property suite for the JSONL wire format: every representable field
//! value — including the non-finite floats that standard JSON cannot
//! carry — must survive `to_json_line` → `from_json_line` losslessly.

use eadrl_obs::{Event, EventKind, Level, Value};
use eadrl_ptest::prelude::*;

/// A float strategy that covers the full pathology: finite values across
/// many magnitudes, plus `NaN`, `±inf`, signed zero and the subnormal
/// boundary, each with substantial probability mass.
fn any_f64(selector: u8, finite: f64, exponent: i32) -> f64 {
    match selector {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::MIN_POSITIVE,
        6 => f64::MAX,
        7 => -f64::MAX,
        _ => finite * 10f64.powi(exponent),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Scalar floats round-trip: the decoded value is bit-identical for
    /// finite inputs and NaN-for-NaN otherwise, and the emitted line is
    /// itself valid JSON (parseable by the crate's own parser).
    #[test]
    fn scalar_f64_round_trips(
        selector in 0u8..12,
        finite in -1e3f64..1e3,
        exponent in -30i32..30,
    ) {
        let v = any_f64(selector, finite, exponent);
        let event = Event::new("props.scalar", EventKind::Event, Level::Info).field("x", v);
        let line = event.to_json_line();
        let back = Event::from_json_line(&line)
            .unwrap_or_else(|e| panic!("line must parse ({e}): {line}"));
        prop_assert!(event.semantically_eq(&back), "{v} mangled: {line}");
        match back.get("x") {
            Some(Value::F64(got)) => {
                prop_assert!(
                    got.to_bits() == v.to_bits() || (got.is_nan() && v.is_nan()),
                    "decoded {got} from {v}"
                );
            }
            other => prop_assert!(false, "field lost its type: {other:?}"),
        }
    }

    /// Vectors mixing finite and non-finite elements round-trip with the
    /// non-finite elements in their original positions.
    #[test]
    fn f64_vector_round_trips(
        selectors in prop::collection::vec(0u8..12, 0..24),
        finite in -1e6f64..1e6,
        exponent in -20i32..20,
    ) {
        let values: Vec<f64> = selectors
            .iter()
            .map(|&s| any_f64(s, finite, exponent))
            .collect();
        let event =
            Event::new("props.vector", EventKind::Event, Level::Debug).field("xs", values.clone());
        let line = event.to_json_line();
        let back = Event::from_json_line(&line)
            .unwrap_or_else(|e| panic!("line must parse ({e}): {line}"));
        prop_assert!(event.semantically_eq(&back), "vector mangled: {line}");
        match back.get("xs") {
            Some(Value::F64s(got)) => {
                prop_assert_eq!(got.len(), values.len());
                for (g, v) in got.iter().zip(values.iter()) {
                    prop_assert!(
                        g.to_bits() == v.to_bits() || (g.is_nan() && v.is_nan()),
                        "decoded {} from {}", g, v
                    );
                }
            }
            other => prop_assert!(false, "field lost its type: {other:?}"),
        }
    }

    /// Full events with mixed field types, any level/kind/thread, and
    /// adversarial string content survive the round trip.
    #[test]
    fn mixed_events_round_trip(
        level_idx in 0usize..5,
        kind_idx in 0usize..3,
        thread in 0u64..9,
        count in 0u64..1_000_000,
        flag in 0u8..2,
        text_bytes in prop::collection::vec(32u8..127, 0..20),
        selector in 0u8..12,
        finite in -1e3f64..1e3,
    ) {
        let levels = [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace];
        let kinds = [EventKind::Event, EventKind::Span, EventKind::Metric];
        let text: String = text_bytes.iter().map(|&b| b as char).collect();
        let mut event = Event::new("props.mixed", kinds[kind_idx], levels[level_idx])
            .field("n", count)
            .field("flag", flag == 1)
            .field("s", text.as_str())
            .field("x", any_f64(selector, finite, 0));
        event.thread = thread;
        let line = event.to_json_line();
        let back = Event::from_json_line(&line)
            .unwrap_or_else(|e| panic!("line must parse ({e}): {line}"));
        prop_assert!(event.semantically_eq(&back), "event mangled: {line}");
        prop_assert_eq!(back.thread, thread);
    }

    /// The three sentinel strings are reserved: a `Value::Str` carrying
    /// one of them decodes as the float — the documented, deliberate
    /// collision — while every other string stays a string.
    #[test]
    fn non_sentinel_strings_stay_strings(text_bytes in prop::collection::vec(97u8..123, 1..12)) {
        let text: String = text_bytes.iter().map(|&b| b as char).collect();
        prop_assume!(text != "NaN" && text != "Infinity" && text != "-Infinity");
        let event = Event::new("props.text", EventKind::Event, Level::Info)
            .field("s", text.as_str());
        let back = Event::from_json_line(&event.to_json_line()).expect("parses");
        prop_assert_eq!(back.get("s"), Some(&Value::Str(text)));
    }
}
