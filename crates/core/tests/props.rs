//! Property-based tests for the EA-DRL core.

use eadrl_core::baselines::opera::project_simplex;
use eadrl_core::env::normalize_window;
use eadrl_core::{EnsembleEnv, RewardKind};
use eadrl_ptest::prelude::*;
use eadrl_rl::Environment;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simplex_projection_is_idempotent_and_valid(
        v in prop::collection::vec(-100.0f64..100.0, 1..20),
    ) {
        let p = project_simplex(&v);
        prop_assert_eq!(p.len(), v.len());
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
        // Projecting again changes nothing.
        let q = project_simplex(&p);
        for (a, b) in p.iter().zip(q.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_preserves_order(v in prop::collection::vec(-10.0f64..10.0, 2..12)) {
        let p = project_simplex(&v);
        for i in 0..v.len() {
            for j in 0..v.len() {
                if v[i] > v[j] {
                    prop_assert!(p[i] >= p[j] - 1e-12, "order violated at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn normalized_windows_have_zero_mean_unit_std(
        window in prop::collection::vec(-1e4f64..1e4, 2..30),
    ) {
        let spread = window.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - window.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-6);
        let n = normalize_window(&window);
        let mean: f64 = n.iter().sum::<f64>() / n.len() as f64;
        let var: f64 = n.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n.len() as f64;
        prop_assert!(mean.abs() < 1e-9);
        prop_assert!((var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rank_reward_is_always_in_range(
        noise in prop::collection::vec(-5.0f64..5.0, 20..40),
        offsets in prop::collection::vec(-10.0f64..10.0, 3),
        weights_raw in prop::collection::vec(0.01f64..1.0, 3),
    ) {
        let actuals: Vec<f64> = noise.iter().scan(0.0, |acc, n| {
            *acc += n;
            Some(*acc)
        }).collect();
        let preds: Vec<Vec<f64>> = actuals
            .iter()
            .map(|&a| offsets.iter().map(|o| a + o).collect())
            .collect();
        let m = offsets.len();
        let total: f64 = weights_raw.iter().sum();
        let weights: Vec<f64> = weights_raw.iter().map(|w| w / total).collect();

        let mut env = EnsembleEnv::new(
            preds,
            actuals,
            5,
            RewardKind::Rank { normalize: true },
            1000,
        );
        env.reset();
        loop {
            let (state, reward, done) = env.step(&weights);
            prop_assert!(reward >= 1.0 / m as f64 - 1e-12 && reward <= 1.0 + 1e-12,
                "normalized rank reward {reward} out of range");
            prop_assert_eq!(state.len(), 5);
            prop_assert!(state.iter().all(|v| v.is_finite()));
            if done {
                break;
            }
        }
    }

    #[test]
    fn nrmse_reward_never_exceeds_one(
        noise in prop::collection::vec(-3.0f64..3.0, 20..40),
        offset in -5.0f64..5.0,
    ) {
        let actuals: Vec<f64> = (0..noise.len())
            .map(|t| (t as f64 / 4.0).sin() * 3.0 + noise[t] * 0.1)
            .collect();
        let preds: Vec<Vec<f64>> = actuals.iter().map(|&a| vec![a + offset, a]).collect();
        let mut env = EnsembleEnv::new(preds, actuals, 4, RewardKind::OneMinusNrmse, 1000);
        env.reset();
        loop {
            let (_, reward, done) = env.step(&[0.5, 0.5]);
            prop_assert!(reward <= 1.0 + 1e-9, "1-NRMSE reward {reward} > 1");
            if done {
                break;
            }
        }
    }
}
