//! Weight initialization schemes.

use eadrl_rng::DetRng;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suits tanh/sigmoid layers.
pub fn xavier_uniform(rng: &mut DetRng, fan_in: usize, fan_out: usize, n: usize) -> Vec<f64> {
    let a = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    (0..n).map(|_| rng.random_range(-a..a)).collect()
}

/// He/Kaiming uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`. Suits ReLU layers.
pub fn he_uniform(rng: &mut DetRng, fan_in: usize, n: usize) -> Vec<f64> {
    let a = (6.0 / fan_in.max(1) as f64).sqrt();
    (0..n).map(|_| rng.random_range(-a..a)).collect()
}

/// Small uniform initialization `U(-scale, scale)`, used by DDPG for the
/// final layers of actor and critic so early actions stay near zero.
pub fn small_uniform(rng: &mut DetRng, scale: f64, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.random_range(-scale..scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = DetRng::seed_from_u64(0);
        let w = xavier_uniform(&mut rng, 8, 8, 1000);
        let a = (6.0_f64 / 16.0).sqrt();
        assert!(w.iter().all(|x| x.abs() < a));
        assert_eq!(w.len(), 1000);
    }

    #[test]
    fn he_bounds_hold() {
        let mut rng = DetRng::seed_from_u64(0);
        let w = he_uniform(&mut rng, 6, 500);
        let a = 1.0_f64;
        assert!(w.iter().all(|x| x.abs() < a));
    }

    #[test]
    fn small_uniform_is_small() {
        let mut rng = DetRng::seed_from_u64(3);
        let w = small_uniform(&mut rng, 3e-3, 100);
        assert!(w.iter().all(|x| x.abs() < 3e-3));
    }

    #[test]
    fn init_is_seed_deterministic() {
        let mut a = DetRng::seed_from_u64(9);
        let mut b = DetRng::seed_from_u64(9);
        assert_eq!(
            xavier_uniform(&mut a, 4, 4, 10),
            xavier_uniform(&mut b, 4, 4, 10)
        );
    }

    #[test]
    fn zero_fan_in_does_not_divide_by_zero() {
        let mut rng = DetRng::seed_from_u64(1);
        let w = he_uniform(&mut rng, 0, 4);
        assert!(w.iter().all(|x| x.is_finite()));
    }
}
