//! Deterministic fault-injection harness for the EA-DRL serving path.
//!
//! Production ensembles meet inputs and pool members that the paper's
//! clean benchmark protocol never shows them: models that panic, emit
//! NaN/±Inf, wedge on stale outputs, or blow their latency budget, and
//! history streams with gap bursts. This crate injects exactly those
//! failures, *deterministically*, and audits that the serving path
//! degrades the way `eadrl-core`'s guard promises:
//!
//! * [`fault`] — declarative [`FaultPlan`]s: a committed, line-oriented
//!   text format naming which pool member misbehaves and how, plus gap
//!   bursts in the observed history. All stochastic faults draw from
//!   plan-seeded [`eadrl_rng::DetRng`] substreams keyed by call index —
//!   never ambient entropy — so every scenario replays bit-identically
//!   at every thread count.
//! * [`proxy`] — [`FaultyForecaster`], the fault-injecting wrapper
//!   around any [`eadrl_models::Forecaster`], and the quiet panic hook
//!   that keeps expected injected panics out of the test output.
//! * [`scenario`] — seeded end-to-end chaos runs (offline fit → online
//!   serve → drift-triggered refresh) plus the deliberately unhardened
//!   serving loop CI runs *inverted* to prove the fault plans still
//!   have teeth.
//! * [`invariants`] — the degradation contract audited over each run:
//!   finite outputs, valid weight simplexes, quarantined members
//!   carrying zero weight, ordered quarantine transitions.
//!
//! Like `eadrl-ptest` and `eadrl-lint`, this is a tool crate: it is a
//! dev-dependency of the workspace tests, never a dependency of the
//! production crates.

pub mod fault;
pub mod invariants;
pub mod proxy;
pub mod scenario;

pub use fault::{FaultKind, FaultPlan, GapBurst, ModelFault, NonFinite, PlanParseError};
pub use invariants::{check_run, InvariantReport};
pub use proxy::{quiet_injected_panics, FaultyForecaster, INJECTED_PANIC_PREFIX};
pub use scenario::{
    run_refresh_scenario, run_scenario, run_unhardened, run_warm_refresh_scenario,
    standard_scenarios, Scenario, ScenarioOutcome,
};
