//! Autoregressive forecasting via (ridge-)regularized linear regression.

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use eadrl_linalg::{ridge, Matrix};

/// Ridge linear regression with intercept over embedded windows.
#[derive(Debug, Clone)]
pub struct RidgeRegressor {
    lambda: f64,
    /// `[intercept, coef_1, …, coef_k]` after fitting.
    beta: Vec<f64>,
}

impl RidgeRegressor {
    /// Creates an unfitted regressor with regularization strength `lambda`.
    pub fn new(lambda: f64) -> Self {
        RidgeRegressor {
            lambda: lambda.max(0.0),
            beta: Vec::new(),
        }
    }

    /// Fitted coefficients (`[intercept, coefs…]`), empty before fitting.
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }
}

impl TabularModel for RidgeRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() {
            return Err(ModelError::SeriesTooShort { needed: 1, got: 0 });
        }
        // Design matrix with a leading 1 column for the intercept.
        let rows: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| {
                let mut r = Vec::with_capacity(x.len() + 1);
                r.push(1.0);
                r.extend_from_slice(x);
                r
            })
            .collect();
        let x = Matrix::from_rows(&rows).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        self.beta = ridge(&x, targets, self.lambda).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        if self.beta.is_empty() {
            return 0.0;
        }
        self.beta[0]
            + self.beta[1..]
                .iter()
                .zip(input.iter())
                .map(|(b, x)| b * x)
                .sum::<f64>()
    }
}

/// An autoregressive forecaster `AR(k)` fitted by ridge regression.
pub fn auto_regressive(k: usize, lambda: f64) -> Windowed<RidgeRegressor> {
    Windowed::new(
        format!("AR({k},λ={lambda})"),
        k,
        RidgeRegressor::new(lambda),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    #[test]
    fn fits_linear_recurrence_exactly() {
        // x_t = 0.5 x_{t-1} + 0.25 x_{t-2} + 1
        let mut s = vec![1.0, 2.0];
        for t in 2..80 {
            s.push(0.5 * s[t - 1] + 0.25 * s[t - 2] + 1.0);
        }
        let mut m = auto_regressive(2, 0.0);
        m.fit(&s).unwrap();
        let pred = m.predict_next(&s);
        let truth = 0.5 * s[79] + 0.25 * s[78] + 1.0;
        assert!((pred - truth).abs() < 1e-6, "{pred} vs {truth}");
    }

    #[test]
    fn ridge_survives_constant_series() {
        let s = vec![3.0; 50];
        let mut m = auto_regressive(5, 1e-3);
        m.fit(&s).unwrap();
        assert!((m.predict_next(&s) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn unfitted_regressor_predicts_zero() {
        let r = RidgeRegressor::new(0.1);
        assert_eq!(r.predict(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn coefficients_exposed_after_fit() {
        let mut r = RidgeRegressor::new(0.0);
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..20).map(|i| 2.0 * i as f64 + 1.0).collect();
        r.fit(&inputs, &targets).unwrap();
        assert!((r.coefficients()[0] - 1.0).abs() < 1e-8);
        assert!((r.coefficients()[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn empty_fit_is_error() {
        let mut r = RidgeRegressor::new(0.0);
        assert!(r.fit(&[], &[]).is_err());
    }
}
