//! Synthetic reproductions of the 20 evaluation series of the EA-DRL paper.
//!
//! The paper evaluates on 20 real-world series from 9 domains (Table I):
//! water consumption, bike-sharing weather channels, river flow, weather,
//! solar radiation, taxi demand, wastewater NH4, appliance-energy channels
//! and European stock indices. Those datasets are proprietary or require
//! external downloads, so — per the substitution policy in `DESIGN.md` —
//! this crate generates *structurally equivalent* seeded synthetic series:
//! matching cadence, seasonal period, trend, noise regime, and (crucially
//! for a dynamic-ensemble paper) injected concept drifts and regime
//! switches.
//!
//! Every generator is fully deterministic given `(dataset id, length, seed)`,
//! so experiments are reproducible bit-for-bit.

pub mod catalog;
pub mod components;

pub use catalog::{catalog, generate, DatasetId, DatasetSpec};
pub use components::SeriesBuilder;
