//! Validates a JSONL telemetry trace against the eadrl-obs wire
//! contract. Used by CI on the quickstart trace.
//!
//! ```text
//! obs_validate TRACE.jsonl [--require NAME]...
//! ```
//!
//! Every non-empty line must parse as a JSON object with a numeric `ts`
//! and string `name`/`kind`/`level` fields (the full [`eadrl_obs::Event`]
//! contract). Each `--require NAME` additionally demands at least one
//! event whose name — or any `/`-separated span path segment — equals
//! NAME. Exits non-zero with a diagnostic on the first violation.

use eadrl_obs::Event;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .ok_or("usage: obs_validate TRACE.jsonl [--require NAME]...")?;
    let mut required: Vec<String> = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--require" => {
                required.push(args.next().ok_or("--require needs a NAME argument")?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut seen = vec![false; required.len()];
    let mut events = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_json_line(line)
            .map_err(|e| format!("{path}:{}: invalid event: {e}", lineno + 1))?;
        events += 1;
        for (i, name) in required.iter().enumerate() {
            if event.name_matches(name) {
                seen[i] = true;
            }
        }
    }
    if events == 0 {
        return Err(format!("{path}: trace contains no events"));
    }
    for (i, name) in required.iter().enumerate() {
        if !seen[i] {
            return Err(format!(
                "{path}: no event named '{name}' in {events} events"
            ));
        }
    }
    println!("{path}: {events} events OK");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("obs_validate: {msg}");
            ExitCode::FAILURE
        }
    }
}
