//! Property-based tests for the RL substrate.

use eadrl_ptest::prelude::*;
use eadrl_rl::{ActionSquash, ReplayBuffer, SamplingStrategy, Transition};
use eadrl_rng::DetRng;

fn transition(reward: f64) -> Transition {
    Transition {
        state: vec![0.0],
        action: vec![0.0],
        reward,
        next_state: vec![0.0],
        done: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replay_never_exceeds_capacity(
        capacity in 1usize..64,
        rewards in prop::collection::vec(-100.0f64..100.0, 0..200),
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for (i, &r) in rewards.iter().enumerate() {
            buf.push(transition(r));
            prop_assert!(buf.len() <= capacity);
            prop_assert_eq!(buf.len(), (i + 1).min(capacity));
        }
    }

    #[test]
    fn diversity_batches_are_half_high_half_low(
        rewards in prop::collection::vec(-100.0f64..100.0, 10..60),
        n in 2usize..40,
        seed in 0u64..500,
    ) {
        let mut buf = ReplayBuffer::new(1000);
        for &r in &rewards {
            buf.push(transition(r));
        }
        let median = buf.reward_median();
        let any_below = rewards.iter().any(|&r| r < median);
        let mut rng = DetRng::seed_from_u64(seed);
        let batch = buf.sample(n, SamplingStrategy::Diversity, &mut rng);
        prop_assert_eq!(batch.len(), n);
        let high = batch.iter().filter(|t| t.reward >= median).count();
        // Exactly n/2 draws come from the >= median pool; the rest come
        // from the below pool when it is non-empty.
        if any_below {
            prop_assert_eq!(high, n / 2, "median split violated");
        }
    }

    #[test]
    fn uniform_samples_come_from_the_buffer(
        rewards in prop::collection::vec(-10.0f64..10.0, 1..40),
        n in 1usize..30,
        seed in 0u64..500,
    ) {
        let mut buf = ReplayBuffer::new(64);
        for &r in &rewards {
            buf.push(transition(r));
        }
        let mut rng = DetRng::seed_from_u64(seed);
        for t in buf.sample(n, SamplingStrategy::Uniform, &mut rng) {
            prop_assert!(rewards.iter().any(|&r| (r - t.reward).abs() < 1e-12));
        }
    }

    #[test]
    fn squash_gradients_are_finite_everywhere(
        raw in prop::collection::vec(-50.0f64..50.0, 1..20),
        grad in prop::collection::vec(-10.0f64..10.0, 20),
        scale in 0.5f64..8.0,
    ) {
        let g = &grad[..raw.len()];
        for squash in [
            ActionSquash::Identity,
            ActionSquash::Tanh,
            ActionSquash::Softmax,
            ActionSquash::BoundedSoftmax { scale },
        ] {
            let y = squash.forward(&raw);
            let back = squash.backward(&raw, &y, g);
            prop_assert_eq!(back.len(), raw.len());
            prop_assert!(back.iter().all(|v| v.is_finite()), "{squash:?}");
        }
    }

    #[test]
    fn bounded_softmax_concentration_cap_holds(
        raw in prop::collection::vec(-1e6f64..1e6, 2..30),
        scale in 0.5f64..8.0,
    ) {
        let m = raw.len() as f64;
        let y = ActionSquash::BoundedSoftmax { scale }.forward(&raw);
        let cap = (2.0 * scale).exp() / ((2.0 * scale).exp() + (m - 1.0));
        for &v in &y {
            prop_assert!(v <= cap + 1e-9, "weight {v} above cap {cap}");
        }
    }

    #[test]
    fn softmax_squash_is_shift_invariant(
        raw in prop::collection::vec(-20.0f64..20.0, 2..10),
        shift in -50.0f64..50.0,
    ) {
        let a = ActionSquash::Softmax.forward(&raw);
        let shifted: Vec<f64> = raw.iter().map(|v| v + shift).collect();
        let b = ActionSquash::Softmax.forward(&shifted);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}
