//! Partial-least-squares forecaster (wraps `eadrl_linalg::PlsModel`).

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use eadrl_linalg::{Matrix, PlsModel};

/// PLS1 regression as a tabular model.
#[derive(Debug, Clone)]
pub struct PlsRegressor {
    n_components: usize,
    model: Option<PlsModel>,
}

impl PlsRegressor {
    /// Creates an unfitted PLS regressor with `n_components` latent
    /// components.
    pub fn new(n_components: usize) -> Self {
        PlsRegressor {
            n_components: n_components.max(1),
            model: None,
        }
    }
}

impl TabularModel for PlsRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.len() < 2 || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 2,
                got: inputs.len(),
            });
        }
        let x = Matrix::from_rows(inputs).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        let model =
            PlsModel::fit(&x, targets, self.n_components).map_err(|e| ModelError::Numerical {
                context: e.to_string(),
            })?;
        self.model = Some(model);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        self.model
            .as_ref()
            .and_then(|m| m.predict_one(input).ok())
            .unwrap_or(0.0)
    }
}

/// A PLS forecaster over embedded windows (paper family **PLS**).
pub fn pls(k: usize, n_components: usize) -> Windowed<PlsRegressor> {
    Windowed::new(
        format!("PLS(c={n_components})"),
        k,
        PlsRegressor::new(n_components),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    #[test]
    fn fits_linear_relation() {
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 * 0.1, ((i * 5) % 9) as f64 * 0.3])
            .collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x[0] - 2.0 * x[1] + 4.0).collect();
        let mut m = PlsRegressor::new(2);
        m.fit(&inputs, &targets).unwrap();
        for (x, t) in inputs.iter().zip(targets.iter()).step_by(7) {
            assert!((m.predict(x) - t).abs() < 1e-6);
        }
    }

    #[test]
    fn pls_forecaster_on_ar_series() {
        let mut s = vec![0.5, 1.0];
        for t in 2..140 {
            s.push(0.7 * s[t - 1] + 0.2 * s[t - 2] + 0.3);
        }
        let mut m = pls(5, 2);
        m.fit(&s).unwrap();
        let truth = 0.7 * s[139] + 0.2 * s[138] + 0.3;
        assert!((m.predict_next(&s) - truth).abs() < 0.2);
    }

    #[test]
    fn unfitted_predicts_zero() {
        assert_eq!(PlsRegressor::new(1).predict(&[1.0]), 0.0);
    }

    #[test]
    fn too_few_samples_is_error() {
        let mut m = PlsRegressor::new(1);
        assert!(m.fit(&[vec![1.0]], &[1.0]).is_err());
    }
}
