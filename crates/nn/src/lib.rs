#![allow(clippy::needless_range_loop)] // index loops over multiple parallel arrays read clearer in numeric kernels

//! Minimal neural-network library with manual backpropagation.
//!
//! This crate is the learning substrate of the reproduction. It powers
//!
//! * the **actor** (policy) and **critic** (value) networks of the DDPG
//!   agent in `eadrl-rl` — plain MLPs, as in the paper's setup, and
//! * the neural base forecasters of `eadrl-models` (MLP, LSTM, Bi-LSTM,
//!   CNN-LSTM, Conv-LSTM).
//!
//! Scope is deliberately small: forward/backward passes over `f64` slices,
//! explicit gradient buffers per layer, and optimizers that walk a
//! network's parameters via the [`Network`] visitor. Single-sample paths
//! are the readable reference implementations; the hot training loops go
//! through batched, workspace-backed paths (minibatch-as-matrix GEMMs for
//! [`Dense`]/[`Mlp`], stacked-gate recurrent kernels for [`Lstm`]/
//! [`BiLstm`]/[`Conv1d`]) that are proven bitwise-identical to them.
//!
//! Layers cache their forward activations, so the usage pattern is strictly
//! `forward` → `backward` → optimizer `step` → `zero_grad`.

pub mod activation;
pub mod conv;
pub mod dense;
pub mod gradcheck;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod mlp;
pub mod network;
pub mod optimizer;

pub use activation::Activation;
pub use conv::{Conv1d, ConvInferenceCache, ConvWorkspace};
pub use dense::Dense;
pub use gradcheck::{check_gradients, check_gradients_batched, probe_indices, GradCheckReport};
pub use loss::{mse_loss, mse_loss_grad};
pub use lstm::{
    BiLstm, BiLstmInferenceCache, BiRecurrentWorkspace, Lstm, LstmInferenceCache,
    RecurrentWorkspace,
};
pub use mlp::Mlp;
pub use network::{BatchNetwork, Network};
pub use optimizer::{Adam, Optimizer, Sgd};
