//! Benchmarks for representative base-model families: fit cost and
//! one-step prediction cost (these dominate the end-to-end online
//! loop — see the Table III discussion), plus the pool prediction
//! matrix at 1 vs 4 `eadrl-par` workers and the rolling-history
//! allocation strategy. Pass `--json` to also print a machine-readable
//! `pool_matrix_bench` report with the measured serial/parallel medians.

use eadrl_bench::harness::{Harness, Summary};
use eadrl_bench::{json_output, print_json_report};
use eadrl_datasets::{generate, DatasetId};
use eadrl_models::{
    auto_regressive, decision_tree, gaussian_process, gradient_boosting, lstm_forecaster,
    mlp_forecaster, quick_pool, random_forest, rolling_forecast, Arima, Ets, EtsKind, Forecaster,
};
use std::hint::black_box;

fn models() -> Vec<(&'static str, Box<dyn Forecaster>)> {
    vec![
        (
            "arima_2_1_1",
            Box::new(Arima::new(2, 1, 1)) as Box<dyn Forecaster>,
        ),
        (
            "ets_holt_winters",
            Box::new(Ets::new(EtsKind::HoltWinters { period: 24 })),
        ),
        ("ar_ridge", Box::new(auto_regressive(5, 1e-3))),
        ("decision_tree_d6", Box::new(decision_tree(5, 6, 3))),
        ("random_forest_15x6", Box::new(random_forest(5, 15, 6, 42))),
        ("gbm_60x2", Box::new(gradient_boosting(5, 60, 2, 0.1))),
        (
            "gp_subset150",
            Box::new(gaussian_process(5, 1.0, 1e-2, 150)),
        ),
        ("mlp_h16", Box::new(mlp_forecaster(5, vec![16], 40, 42))),
        ("lstm_h8", Box::new(lstm_forecaster(5, 8, 30, 42))),
    ]
}

fn bench_fit(c: &mut Harness) {
    let series = generate(DatasetId::BikeRentals, 480, 42);
    let train = &series.values()[..270];
    let mut group = c.benchmark_group("model_fit");
    group.sample_size(10);
    for (name, model) in models() {
        group.bench_function(name, |b| {
            b.iter_batched(
                || model.box_clone(),
                |mut m| {
                    m.fit(black_box(train)).unwrap();
                    black_box(m.name().len())
                },
            )
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Harness) {
    let series = generate(DatasetId::BikeRentals, 480, 42);
    let train = &series.values()[..360];
    let mut group = c.benchmark_group("model_predict_next");
    for (name, mut model) in models() {
        model.fit(&train[..270]).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.predict_next(black_box(train))))
        });
    }
    group.finish();
}

/// The pool prediction matrix at an explicit worker count — the same
/// column-parallel construction as `eadrl_core::parallel`, but pinned to
/// `threads` instead of reading `EADRL_PAR_THREADS`, so the 1-vs-4
/// comparison is immune to the environment.
fn matrix_with(
    threads: usize,
    pool: &[Box<dyn Forecaster>],
    train: &[f64],
    segment: &[f64],
) -> Vec<Vec<f64>> {
    let refs: Vec<&dyn Forecaster> = pool.iter().map(AsRef::as_ref).collect();
    let per_model = eadrl_par::par_map_with(threads, refs, |m| rolling_forecast(m, train, segment))
        .expect("rolling_forecast must not panic");
    (0..segment.len())
        .map(|t| per_model.iter().map(|p| p[t]).collect())
        .collect()
}

/// Serial vs 4-worker pool prediction matrix. With `--json`, emits the
/// `pool_matrix_bench` report recording both medians and the speedup —
/// the artifact backing the parallelism claims (the ratio is only
/// meaningful on a multi-core host; on one core the two entries
/// measure the pool's scheduling overhead instead).
fn bench_pool_matrix(c: &mut Harness) {
    let series = generate(DatasetId::BikeRentals, 480, 42);
    let (train, segment) = series.values().split_at(360);
    let pool = eadrl_bench::fit_pool(quick_pool(5, 24, 42), train);
    let mut group = c.benchmark_group("pool_matrix");
    group.sample_size(10);
    group.bench_function("serial_1_worker", |b| {
        b.iter(|| black_box(matrix_with(1, &pool, train, segment)))
    });
    group.bench_function("par_4_workers", |b| {
        b.iter(|| black_box(matrix_with(4, &pool, train, segment)))
    });
    let summaries = group.finish();
    if json_output() {
        let get = |id: &str| -> Summary {
            summaries
                .iter()
                .find(|(name, _)| name == id)
                .map(|(_, s)| *s)
                .unwrap_or(Summary {
                    median_ns: f64::NAN,
                    mean_ns: f64::NAN,
                    min_ns: f64::NAN,
                })
        };
        let serial = get("serial_1_worker");
        let par = get("par_4_workers");
        print_json_report(
            "pool_matrix_bench",
            vec![
                ("pool_size".to_string(), pool.len().into()),
                ("segment_len".to_string(), segment.len().into()),
                ("serial_median_ns".to_string(), serial.median_ns.into()),
                ("par4_median_ns".to_string(), par.median_ns.into()),
                (
                    "speedup_serial_over_par4".to_string(),
                    (serial.median_ns / par.median_ns).into(),
                ),
            ],
        );
    }
}

/// The rolling-history allocation fix, before vs after: the old code
/// started from `train.to_vec()` (capacity == len) so every revealed
/// actual could re-grow and re-copy the buffer; the fixed
/// `rolling_forecast` sizes the buffer for the whole walk up front.
fn bench_rolling_alloc(c: &mut Harness) {
    let series = generate(DatasetId::BikeRentals, 480, 42);
    let (train, segment) = series.values().split_at(360);
    let mut model = auto_regressive(5, 1e-3);
    model.fit(train).unwrap();
    let mut group = c.benchmark_group("rolling_alloc");
    group.bench_function("regrow_per_step", |b| {
        b.iter(|| {
            let mut history = train.to_vec();
            let mut out = Vec::new();
            for &actual in segment {
                out.push(model.predict_next(&history));
                history.push(actual);
            }
            black_box(out)
        })
    });
    group.bench_function("prealloc_whole_walk", |b| {
        b.iter(|| black_box(rolling_forecast(&model, train, segment)))
    });
    group.finish();
}

fn main() {
    let mut h = Harness::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    bench_fit(&mut h);
    bench_predict(&mut h);
    bench_pool_matrix(&mut h);
    bench_rolling_alloc(&mut h);
}
