//! Property-based tests for the neural-network substrate.

use eadrl_nn::{Activation, Adam, Dense, Lstm, Mlp, Network, Optimizer};
use eadrl_ptest::prelude::*;
use eadrl_rng::DetRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dense_gradients_match_finite_differences(
        seed in 0u64..1000,
        input in prop::collection::vec(-2.0f64..2.0, 3),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut layer = Dense::new(&mut rng, 3, 2, Activation::Tanh);
        layer.forward(&input);
        let gin = layer.backward(&[1.0, -0.5]);
        let loss = |l: &Dense, x: &[f64]| -> f64 {
            let y = l.forward_inference(x);
            y[0] - 0.5 * y[1]
        };
        let h = 1e-6;
        for i in 0..3 {
            let mut up = input.clone();
            up[i] += h;
            let mut dn = input.clone();
            dn[i] -= h;
            let numeric = (loss(&layer, &up) - loss(&layer, &dn)) / (2.0 * h);
            prop_assert!((numeric - gin[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn mlp_flat_param_roundtrip_preserves_outputs(
        seed in 0u64..1000,
        input in prop::collection::vec(-3.0f64..3.0, 4),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut a = Mlp::new(&mut rng, &[4, 6, 2], Activation::Relu, Activation::Identity);
        let mut rng2 = DetRng::seed_from_u64(seed.wrapping_add(1));
        let mut b = Mlp::new(&mut rng2, &[4, 6, 2], Activation::Relu, Activation::Identity);
        b.load_flat_params(&a.flat_params());
        prop_assert_eq!(a.forward_inference(&input), b.forward_inference(&input));
    }

    #[test]
    fn clip_grad_norm_enforces_the_bound(
        seed in 0u64..1000,
        grad in prop::collection::vec(-100.0f64..100.0, 2),
        bound in 0.1f64..10.0,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&mut rng, &[2, 4, 2], Activation::Tanh, Activation::Identity);
        mlp.forward(&[1.0, -1.0]);
        mlp.backward(&grad);
        mlp.clip_grad_norm(bound);
        prop_assert!(mlp.grad_norm() <= bound + 1e-9);
    }

    #[test]
    fn adam_steps_keep_parameters_finite(
        seed in 0u64..1000,
        targets in prop::collection::vec(-10.0f64..10.0, 1..8),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&mut rng, &[1, 4, 1], Activation::Tanh, Activation::Identity);
        let mut opt = Adam::new(0.05);
        for (i, &t) in targets.iter().enumerate() {
            mlp.zero_grad();
            let y = mlp.forward(&[i as f64 / 4.0]);
            mlp.backward(&[2.0 * (y[0] - t)]);
            opt.step(&mut mlp);
        }
        prop_assert!(mlp.flat_params().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn soft_update_interpolates(seed in 0u64..1000, tau in 0.0f64..1.0) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut net = Mlp::new(&mut rng, &[2, 3, 1], Activation::Relu, Activation::Identity);
        let before = net.flat_params();
        let source: Vec<f64> = before.iter().map(|v| v + 1.0).collect();
        net.soft_update_from(&source, tau);
        for ((b, s), a) in before.iter().zip(source.iter()).zip(net.flat_params().iter()) {
            let expect = tau * s + (1.0 - tau) * b;
            prop_assert!((a - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn lstm_is_deterministic_and_finite(
        seed in 0u64..1000,
        inputs in prop::collection::vec(-5.0f64..5.0, 1..12),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let lstm = Lstm::new(&mut rng, 1, 4);
        let seq: Vec<Vec<f64>> = inputs.iter().map(|&v| vec![v]).collect();
        let a = lstm.forward_inference(&seq);
        let b = lstm.forward_inference(&seq);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|v| v.is_finite()));
        // Hidden states are bounded by the tanh output gate.
        prop_assert!(a.iter().all(|v| v.abs() <= 1.0));
    }
}
