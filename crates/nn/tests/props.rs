//! Property-based tests for the neural-network substrate.

use eadrl_linalg::Matrix;
use eadrl_nn::{Activation, Adam, Dense, Lstm, Mlp, Network, Optimizer};
use eadrl_ptest::prelude::*;
use eadrl_rng::DetRng;

/// Deterministic input rows for the batch-equivalence properties.
fn random_rows(rng: &mut DetRng, batch: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..batch)
        .map(|_| (0..dim).map(|_| rng.random_range(-2.0..2.0)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dense_gradients_match_finite_differences(
        seed in 0u64..1000,
        input in prop::collection::vec(-2.0f64..2.0, 3),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut layer = Dense::new(&mut rng, 3, 2, Activation::Tanh);
        layer.forward(&input);
        let gin = layer.backward(&[1.0, -0.5]);
        let loss = |l: &Dense, x: &[f64]| -> f64 {
            let y = l.forward_inference(x);
            y[0] - 0.5 * y[1]
        };
        let h = 1e-6;
        for i in 0..3 {
            let mut up = input.clone();
            up[i] += h;
            let mut dn = input.clone();
            dn[i] -= h;
            let numeric = (loss(&layer, &up) - loss(&layer, &dn)) / (2.0 * h);
            prop_assert!((numeric - gin[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn mlp_flat_param_roundtrip_preserves_outputs(
        seed in 0u64..1000,
        input in prop::collection::vec(-3.0f64..3.0, 4),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut a = Mlp::new(&mut rng, &[4, 6, 2], Activation::Relu, Activation::Identity);
        let mut rng2 = DetRng::seed_from_u64(seed.wrapping_add(1));
        let mut b = Mlp::new(&mut rng2, &[4, 6, 2], Activation::Relu, Activation::Identity);
        b.load_flat_params(&a.flat_params());
        prop_assert_eq!(a.forward_inference(&input), b.forward_inference(&input));
    }

    #[test]
    fn clip_grad_norm_enforces_the_bound(
        seed in 0u64..1000,
        grad in prop::collection::vec(-100.0f64..100.0, 2),
        bound in 0.1f64..10.0,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&mut rng, &[2, 4, 2], Activation::Tanh, Activation::Identity);
        mlp.forward(&[1.0, -1.0]);
        mlp.backward(&grad);
        mlp.clip_grad_norm(bound);
        prop_assert!(mlp.grad_norm() <= bound + 1e-9);
    }

    #[test]
    fn adam_steps_keep_parameters_finite(
        seed in 0u64..1000,
        targets in prop::collection::vec(-10.0f64..10.0, 1..8),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&mut rng, &[1, 4, 1], Activation::Tanh, Activation::Identity);
        let mut opt = Adam::new(0.05);
        for (i, &t) in targets.iter().enumerate() {
            mlp.zero_grad();
            let y = mlp.forward(&[i as f64 / 4.0]);
            mlp.backward(&[2.0 * (y[0] - t)]);
            opt.step(&mut mlp);
        }
        prop_assert!(mlp.flat_params().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn soft_update_interpolates(seed in 0u64..1000, tau in 0.0f64..1.0) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut net = Mlp::new(&mut rng, &[2, 3, 1], Activation::Relu, Activation::Identity);
        let before = net.flat_params();
        let source: Vec<f64> = before.iter().map(|v| v + 1.0).collect();
        net.soft_update_from(&source, tau);
        for ((b, s), a) in before.iter().zip(source.iter()).zip(net.flat_params().iter()) {
            let expect = tau * s + (1.0 - tau) * b;
            prop_assert!((a - expect).abs() < 1e-12);
        }
    }

    /// The batch contract, bitwise: `forward_batch(rows)` must equal
    /// `rows.map(forward)` for random shapes and batch sizes, through both
    /// a single layer and a deep MLP (ReLU exercises the exact-zero
    /// sparsity fast path in the GEMM kernels).
    #[test]
    fn forward_batch_is_bitwise_map_of_forward(
        seed in 0u64..1000,
        batch in 1usize..9,
        in_dim in 1usize..7,
        hidden in 1usize..9,
        out_dim in 1usize..5,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let rows = random_rows(&mut rng, batch, in_dim);
        let input = Matrix::from_rows(&rows).unwrap();

        let mut dense = Dense::new(&mut rng, in_dim, out_dim, Activation::Relu);
        let per: Vec<Vec<f64>> = rows.iter().map(|x| dense.forward(x)).collect();
        let out = dense.forward_batch(&input);
        for (r, expect) in per.iter().enumerate() {
            let got: Vec<u64> = out.row(r).iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got, want, "dense row {}", r);
        }

        let mut mlp = Mlp::new(&mut rng, &[in_dim, hidden, out_dim], Activation::Relu, Activation::Identity);
        let per: Vec<Vec<f64>> = rows.iter().map(|x| mlp.forward(x)).collect();
        let out = mlp.forward_batch(&input);
        for (r, expect) in per.iter().enumerate() {
            let got: Vec<u64> = out.row(r).iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got, want, "mlp row {}", r);
        }
    }

    /// Batched backward must leave gradient buffers bitwise equal to
    /// per-sample forward/backward pairs run in row order.
    #[test]
    fn backward_batch_accumulates_bitwise_per_sample_grads(
        seed in 0u64..1000,
        batch in 1usize..9,
        in_dim in 1usize..6,
        out_dim in 1usize..5,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let rows = random_rows(&mut rng, batch, in_dim);
        let grads = random_rows(&mut rng, batch, out_dim);

        let mut per = Mlp::new(&mut rng, &[in_dim, 5, out_dim], Activation::Tanh, Activation::Identity);
        let mut bat = per.clone();

        let mut per_gin = Vec::new();
        for (x, g) in rows.iter().zip(grads.iter()) {
            per.forward(x);
            per_gin.push(per.backward(g));
        }

        let input = Matrix::from_rows(&rows).unwrap();
        let gout = Matrix::from_rows(&grads).unwrap();
        bat.forward_batch(&input);
        let gin = bat.backward_batch(&gout);
        for (r, expect) in per_gin.iter().enumerate() {
            let got: Vec<u64> = gin.row(r).iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got, want, "grad_input row {}", r);
        }

        let mut pg = Vec::new();
        per.visit_params(&mut |_p, g| pg.extend(g.iter().map(|v| v.to_bits())));
        let mut bg = Vec::new();
        bat.visit_params(&mut |_p, g| bg.extend(g.iter().map(|v| v.to_bits())));
        prop_assert_eq!(pg, bg, "parameter gradients diverged");

        // The input-only backward must return the same input-gradient bits
        // while leaving every parameter gradient untouched.
        let mut io = bat.clone();
        io.zero_grad();
        io.forward_batch(&input);
        let gin_io = io.backward_batch_input_only(&gout);
        for (r, expect) in per_gin.iter().enumerate() {
            let got: Vec<u64> = gin_io.row(r).iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = expect.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got, want, "input-only grad_input row {}", r);
        }
        let mut untouched = true;
        io.visit_params(&mut |_p, g| untouched &= g.iter().all(|&v| v == 0.0));
        prop_assert!(untouched, "input-only backward wrote parameter gradients");

        // The weights-only backward must accumulate bitwise-identical
        // parameter gradients (it merely skips the discarded layer-0
        // input gradient).
        let mut wo = bat.clone();
        wo.zero_grad();
        wo.forward_batch(&input);
        wo.backward_batch_weights_only(&gout);
        let mut wg = Vec::new();
        wo.visit_params(&mut |_p, g| wg.extend(g.iter().map(|v| v.to_bits())));
        prop_assert_eq!(wg, bg, "weights-only parameter gradients diverged");
    }

    #[test]
    fn lstm_is_deterministic_and_finite(
        seed in 0u64..1000,
        inputs in prop::collection::vec(-5.0f64..5.0, 1..12),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let lstm = Lstm::new(&mut rng, 1, 4);
        let seq: Vec<Vec<f64>> = inputs.iter().map(|&v| vec![v]).collect();
        let a = lstm.forward_inference(&seq);
        let b = lstm.forward_inference(&seq);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|v| v.is_finite()));
        // Hidden states are bounded by the tanh output gate.
        prop_assert!(a.iter().all(|v| v.abs() <= 1.0));
    }
}
