//! Plain-text I/O for time series (dependency-free CSV subset).
//!
//! Enough to get real-world data in and experiment results out without
//! pulling a CSV dependency: one value per row, or a chosen column of a
//! comma-separated file with an optional header row.

use crate::series::{Frequency, TimeSeries};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from series I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A cell could not be parsed as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending cell content.
        cell: String,
    },
    /// The requested column does not exist on some row.
    MissingColumn {
        /// 1-based line number.
        line: usize,
        /// Requested column index.
        column: usize,
    },
    /// The file contained no usable values.
    Empty,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, cell } => {
                write!(f, "line {line}: cannot parse {cell:?} as a number")
            }
            IoError::MissingColumn { line, column } => {
                write!(f, "line {line}: no column {column}")
            }
            IoError::Empty => write!(f, "no values found"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads column `column` (0-based) of comma-separated `reader` into a
/// series. A first row whose target cell does not parse as a number is
/// treated as a header and skipped; blank lines are ignored.
pub fn read_csv_column<R: Read>(
    reader: R,
    column: usize,
    name: &str,
    frequency: Frequency,
) -> Result<TimeSeries, IoError> {
    let buf = BufReader::new(reader);
    let mut values = Vec::new();
    let mut first_data_row = true;
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').collect();
        let cell = cells
            .get(column)
            .ok_or(IoError::MissingColumn {
                line: idx + 1,
                column,
            })?
            .trim();
        match cell.parse::<f64>() {
            Ok(v) => {
                values.push(v);
                first_data_row = false;
            }
            Err(_) if first_data_row => {
                // Header row: skip once.
                first_data_row = false;
            }
            Err(_) => {
                return Err(IoError::Parse {
                    line: idx + 1,
                    cell: cell.to_string(),
                })
            }
        }
    }
    if values.is_empty() {
        return Err(IoError::Empty);
    }
    Ok(TimeSeries::new(name, frequency, values))
}

/// Reads a series from a CSV file on disk (see [`read_csv_column`]).
pub fn read_csv_file(
    path: impl AsRef<Path>,
    column: usize,
    frequency: Frequency,
) -> Result<TimeSeries, IoError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("series")
        .to_string();
    let file = std::fs::File::open(path)?;
    read_csv_column(file, column, &name, frequency)
}

/// Writes a series as a two-column CSV (`index,value`) with a header.
pub fn write_csv<W: Write>(mut writer: W, series: &TimeSeries) -> Result<(), IoError> {
    writeln!(writer, "index,{}", series.name().replace(',', "_"))?;
    for (i, v) in series.values().iter().enumerate() {
        writeln!(writer, "{i},{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_single_column() {
        let csv = "1.0\n2.5\n-3.0\n";
        let s = read_csv_column(csv.as_bytes(), 0, "x", Frequency::Other).unwrap();
        assert_eq!(s.values(), &[1.0, 2.5, -3.0]);
        assert_eq!(s.name(), "x");
    }

    #[test]
    fn skips_header_and_blank_lines() {
        let csv = "time,value\n\n0,10.5\n1,11.25\n";
        let s = read_csv_column(csv.as_bytes(), 1, "v", Frequency::Hourly).unwrap();
        assert_eq!(s.values(), &[10.5, 11.25]);
        assert_eq!(s.frequency(), Frequency::Hourly);
    }

    #[test]
    fn reports_bad_cells_with_line_numbers() {
        let csv = "1.0\noops\n";
        let err = read_csv_column(csv.as_bytes(), 0, "x", Frequency::Other).unwrap_err();
        match err {
            IoError::Parse { line, cell } => {
                assert_eq!(line, 2);
                assert_eq!(cell, "oops");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn reports_missing_columns() {
        let csv = "1.0,2.0\n3.0\n";
        let err = read_csv_column(csv.as_bytes(), 1, "x", Frequency::Other).unwrap_err();
        assert!(matches!(err, IoError::MissingColumn { line: 2, column: 1 }));
    }

    #[test]
    fn empty_input_is_an_error() {
        let err = read_csv_column("".as_bytes(), 0, "x", Frequency::Other).unwrap_err();
        assert!(matches!(err, IoError::Empty));
        // Header only also counts as empty.
        let err2 = read_csv_column("value\n".as_bytes(), 0, "x", Frequency::Other).unwrap_err();
        assert!(matches!(err2, IoError::Empty));
    }

    #[test]
    fn write_read_roundtrip() {
        let s = TimeSeries::new("demand", Frequency::Daily, vec![1.5, 2.25, 3.0]);
        let mut buf = Vec::new();
        write_csv(&mut buf, &s).unwrap();
        let back = read_csv_column(buf.as_slice(), 1, "demand", Frequency::Daily).unwrap();
        assert_eq!(back.values(), s.values());
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join("eadrl_io_test.csv");
        let s = TimeSeries::new("t", Frequency::Other, vec![4.0, 5.0]);
        let mut f = std::fs::File::create(&path).unwrap();
        write_csv(&mut f, &s).unwrap();
        drop(f);
        let back = read_csv_file(&path, 1, Frequency::Other).unwrap();
        assert_eq!(back.values(), &[4.0, 5.0]);
        assert_eq!(back.name(), "eadrl_io_test");
        let _ = std::fs::remove_file(&path);
    }
}
