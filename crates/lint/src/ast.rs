//! A lightweight Rust parser on top of the lexer — just deep enough for
//! call-graph construction.
//!
//! This is *not* an expression grammar. The parser recovers exactly the
//! structure the interprocedural passes need:
//!
//! * the **item tree**: `mod` nesting, `impl` blocks (inherent and
//!   trait), `trait` declarations, and `fn` items (including nested
//!   fns), each with its module path, receiver type, visibility and
//!   body span;
//! * per-fn **call sites**: bare calls (`helper(…)`), qualified paths
//!   (`kernels::gemm(…)`, `Type::method(…)`, turbofish included),
//!   method calls (`.predict(…)`), macro invocations (`format!(…)`),
//!   and multi-segment function *references* passed as values
//!   (`par_map(xs, Self::step)`). Calls inside closures belong to the
//!   enclosing fn — a closure is not an item, so its body simply stays
//!   inside the fn's token range;
//! * per-fn **intrinsic sites**: the panic escape hatches
//!   (`.unwrap()`, `panic!`, …), the allocating std calls
//!   (`Vec::new`, `.push(…)`, `format!`, `.clone()`, …) and the
//!   nondeterminism sources (`Instant::now`, `HashMap`,
//!   `thread::current`) — each tagged with whether a suppression
//!   marker covers its line;
//! * the file's **use-map** (`use a::b::{c as d}` → `d` ⇒ `a::b::c`),
//!   which drives cross-module name resolution in `callgraph`.
//!
//! Everything is conservative: what the parser cannot classify it
//! ignores (no call edge) or over-approximates (method calls dispatch
//! by name); it never panics on malformed input.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Keywords that can never be a called function's name (unless raw).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "true", "type", "union", "unsafe",
    "use", "where", "while", "yield",
];

/// Panic escape hatches matched as method calls (`.name(`).
pub const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Panic escape hatches matched as macros (`name!`).
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Allocating std method calls (`.name(`) — growth or fresh ownership.
pub const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_str",
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "collect",
    "extend",
];
/// Allocating constructors matched as `Type::fn` path suffixes.
pub const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];
/// Allocating macros (`name!`).
pub const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// What a call site refers to, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(…)` — receiver type unknown; resolved to every workspace
    /// method of that name the caller's crate can see.
    Method { name: String },
    /// `a::b::name(…)` or bare `name(…)` (one segment), or a
    /// multi-segment path used as a function value.
    Path { segments: Vec<String> },
    /// `name!(…)` — only interesting when it is a panic/alloc intrinsic
    /// (workspace `macro_rules!` bodies are not expanded).
    Macro { name: String },
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What is being called.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: usize,
}

/// What an intrinsic site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap()` / `panic!` / … — can abort the process.
    Panic,
    /// `Vec::push` / `format!` / `.clone()` / … — allocates.
    Alloc,
    /// `Instant::now` / `HashMap` / `thread::current` — nondeterminism.
    Taint,
}

/// One intrinsic (panic / alloc / taint) site inside a fn body.
#[derive(Debug, Clone)]
pub struct Site {
    /// Classification.
    pub kind: SiteKind,
    /// Human-readable description of the construct (`.unwrap()`,
    /// `Instant::now`, `format!`).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
    /// A suppression marker covers this line for the matching rule
    /// (line-level `allow` lifted into the dataflow analysis).
    pub allowed: bool,
}

/// One `fn` item (free fn, inherent/trait-impl method, trait default
/// method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The fn's own name.
    pub name: String,
    /// Module path inside the crate (file-derived base + inline `mod`s).
    pub module: Vec<String>,
    /// Receiver type for methods (`impl Type`), the trait's name for
    /// trait-default bodies, `None` for free fns.
    pub self_type: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` methods.
    pub trait_impl: Option<String>,
    /// Declared inside a `trait` block (signature or default body).
    pub in_trait_decl: bool,
    /// Has a `{…}` body (false for trait signatures / extern decls).
    pub has_body: bool,
    /// `pub`-reachable (trait members count as pub).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Last line of the item (body close or `;`).
    pub end_line: usize,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// Call sites in the body (closures included, nested fns excluded).
    pub calls: Vec<CallSite>,
    /// Panic/alloc/taint intrinsics in the body.
    pub sites: Vec<Site>,
}

impl FnDef {
    /// `Type::name` or plain `name` — the workspace-unique-ish label used
    /// in reports and chains (path disambiguates the rest).
    pub fn label(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed file: the item tree plus its use-map.
#[derive(Debug)]
pub struct FileAst {
    /// Workspace-relative path (as in [`SourceFile::rel_path`]).
    pub rel_path: String,
    /// Owning crate's short name (`linalg`, `nn`, …; `eadrl` for the
    /// umbrella crate). Derived from the path.
    pub crate_name: String,
    /// True for `src/` library code (not `tests/`, `benches/`,
    /// `examples/`, or `src/bin/`).
    pub is_lib: bool,
    /// `use` alias → absolute-ish path segments (leading `crate`
    /// rewritten to the crate name).
    pub uses: BTreeMap<String, Vec<String>>,
    /// Every fn item in the file.
    pub fns: Vec<FnDef>,
}

/// Derives `(crate_name, is_lib)` from a workspace-relative path. The
/// *last* `crates/<name>/` match wins so fixture trees
/// (`crates/lint/tests/fixtures/deep_bad/crates/mini/src/lib.rs`) are
/// attributed to the crate they mimic.
pub fn crate_of(rel_path: &str) -> (String, bool) {
    let mut crate_name = "eadrl".to_string();
    let mut rest = rel_path;
    let mut tail = rel_path;
    while let Some(at) = rest.find("crates/") {
        let after = &rest[at + "crates/".len()..];
        if let Some(slash) = after.find('/') {
            crate_name = after[..slash].to_string();
            tail = &after[slash + 1..];
        }
        rest = &rest[at + "crates/".len()..];
    }
    let is_lib = tail.starts_with("src/") && !tail.starts_with("src/bin/");
    (crate_name, is_lib)
}

/// The module path a file's items live in (`src/lib.rs` → `[]`,
/// `src/rules/mod.rs` → `["rules"]`, `src/rules/float_eq.rs` →
/// `["rules", "float_eq"]`).
fn base_module(rel_path: &str) -> Vec<String> {
    let tail = match rel_path.rfind("src/") {
        Some(at) => &rel_path[at + 4..],
        None => match rel_path.rsplit('/').next() {
            Some(f) => f,
            None => rel_path,
        },
    };
    let tail = tail.trim_end_matches(".rs");
    if tail == "lib" || tail == "main" {
        return Vec::new();
    }
    let mut segs: Vec<String> = tail.split('/').map(str::to_string).collect();
    if segs.last().map(String::as_str) == Some("mod") {
        segs.pop();
    }
    segs
}

/// Skips a balanced `<…>` starting at `i` (which must point at `<`).
/// Returns the index just past the closing `>`; accounts for `<<`/`>>`
/// lexing as single shift operators inside nested generics.
fn skip_angles(tokens: &[Token], i: usize) -> usize {
    let mut depth: isize = 0;
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "<") => depth += 1,
            (TokenKind::Punct, ">") => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            (TokenKind::Op, "<<") => depth += 2,
            (TokenKind::Op, ">>") => {
                depth -= 2;
                if depth <= 0 {
                    return j + 1;
                }
            }
            // A `;` or `{` at angle depth means we mis-guessed (comparison
            // operator, not generics) — bail out conservatively.
            (TokenKind::Punct, ";" | "{") => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Parses one file into its item tree. Never fails; unparseable stretches
/// simply contribute no items.
pub fn parse_file(file: &SourceFile) -> FileAst {
    let (crate_name, is_lib) = crate_of(&file.rel_path);
    let mut p = Parser {
        toks: &file.tokens,
        file,
        crate_name: crate_name.clone(),
        uses: BTreeMap::new(),
        fns: Vec::new(),
    };
    let base = base_module(&file.rel_path);
    let end = p.toks.len();
    p.items(0, end, &base, &ImplCtx::None);
    let mut ast = FileAst {
        rel_path: file.rel_path.clone(),
        crate_name,
        is_lib,
        uses: p.uses,
        fns: p.fns,
    };
    // Sites/calls were collected per fn over its body span; nested fns
    // are separate items whose spans are inside the parent's — strip the
    // parent's view of them.
    strip_nested(&mut ast.fns);
    ast
}

/// Enclosing impl/trait context while walking items.
enum ImplCtx {
    None,
    Impl {
        ty: Option<String>,
        trait_name: Option<String>,
    },
    Trait(String),
}

struct Parser<'a> {
    toks: &'a [Token],
    file: &'a SourceFile,
    crate_name: String,
    uses: BTreeMap<String, Vec<String>>,
    fns: Vec<FnDef>,
}

impl<'a> Parser<'a> {
    /// Walks the token range `[i, end)` as an item sequence inside module
    /// path `module` and impl context `ctx`.
    fn items(&mut self, mut i: usize, end: usize, module: &[String], ctx: &ImplCtx) {
        while i < end {
            let t = &self.toks[i];
            if t.is_kw("use") {
                i = self.use_decl(i + 1, end);
            } else if t.is_kw("mod") {
                i = self.mod_item(i, end, module, ctx);
            } else if t.is_kw("impl") {
                i = self.impl_item(i, end, module);
            } else if t.is_kw("trait") {
                i = self.trait_item(i, end, module);
            } else if t.is_kw("fn") {
                i = self.fn_item(i, end, module, ctx);
            } else if t.kind == TokenKind::Punct && t.text == "{" {
                // An expression / const / static block we don't model —
                // recurse so nested items are still found.
                let close = self.matching_brace(i, end);
                self.items(i + 1, close, module, ctx);
                i = close + 1;
            } else {
                i += 1;
            }
        }
    }

    /// Index of the `}` matching the `{` at `i` (or `end` if unbalanced).
    fn matching_brace(&self, i: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            match (self.toks[j].kind, self.toks[j].text.as_str()) {
                (TokenKind::Punct, "{") => depth += 1,
                (TokenKind::Punct, "}") => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end.saturating_sub(1).max(i)
    }

    /// `use path::{a, b as c, d::*};` — fills the alias map. `i` points
    /// just past the `use` keyword; returns the index past the `;`.
    fn use_decl(&mut self, i: usize, end: usize) -> usize {
        let mut j = i;
        while j < end && !(self.toks[j].kind == TokenKind::Punct && self.toks[j].text == ";") {
            j += 1;
        }
        let prefix: Vec<String> = Vec::new();
        self.use_tree(i, j, &prefix);
        j + 1
    }

    /// Recursive use-tree walk over `[i, end)` with the accumulated
    /// `prefix` of outer segments.
    fn use_tree(&mut self, i: usize, end: usize, prefix: &[String]) {
        let mut segs: Vec<String> = Vec::new();
        let mut j = i;
        while j < end {
            let t = &self.toks[j];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "as") if !t.raw => {
                    // `path as alias`
                    if let Some(alias) = self.toks.get(j + 1) {
                        if alias.kind == TokenKind::Ident {
                            let mut full = prefix.to_vec();
                            full.extend(segs.iter().cloned());
                            self.record_use(alias.text.clone(), full);
                        }
                    }
                    return;
                }
                (TokenKind::Ident, _) => segs.push(t.text.clone()),
                (TokenKind::Op, "::") => {}
                (TokenKind::Punct, "{") => {
                    // Group: recurse per comma-separated subtree.
                    let close = self.matching_brace(j, end);
                    let mut outer = prefix.to_vec();
                    outer.extend(segs.iter().cloned());
                    let mut part = j + 1;
                    let mut depth = 0usize;
                    for k in j + 1..close {
                        match (self.toks[k].kind, self.toks[k].text.as_str()) {
                            (TokenKind::Punct, "{") => depth += 1,
                            (TokenKind::Punct, "}") => depth = depth.saturating_sub(1),
                            (TokenKind::Punct, ",") if depth == 0 => {
                                self.use_tree(part, k, &outer);
                                part = k + 1;
                            }
                            _ => {}
                        }
                    }
                    self.use_tree(part, close, &outer);
                    return;
                }
                (TokenKind::Punct, "*") => return, // glob — not tracked
                _ => {}
            }
            j += 1;
        }
        if let Some(last) = segs.last().cloned() {
            let mut full = prefix.to_vec();
            full.extend(segs);
            self.record_use(last, full);
        }
    }

    fn record_use(&mut self, alias: String, mut full: Vec<String>) {
        if alias == "self" {
            // `use a::b::{self}` — aliases the module name itself.
            if let Some(pos) = full.iter().rposition(|s| s == "self") {
                full.remove(pos);
            }
            if let Some(m) = full.last().cloned() {
                self.uses.insert(m, full);
            }
            return;
        }
        // Normalize a leading `crate::` to the owning crate's name so the
        // resolver treats both spellings identically.
        if full.first().map(String::as_str) == Some("crate") {
            full[0] = format!("eadrl_{}", self.crate_name);
        }
        self.uses.insert(alias, full);
    }

    /// `mod name { … }` or `mod name;`. `i` points at `mod`.
    fn mod_item(&mut self, i: usize, end: usize, module: &[String], ctx: &ImplCtx) -> usize {
        let Some(name) = self.toks.get(i + 1) else {
            return i + 1;
        };
        if name.kind != TokenKind::Ident {
            return i + 1;
        }
        let mut j = i + 2;
        while j < end {
            match (self.toks[j].kind, self.toks[j].text.as_str()) {
                (TokenKind::Punct, ";") => return j + 1,
                (TokenKind::Punct, "{") => {
                    let close = self.matching_brace(j, end);
                    let mut inner = module.to_vec();
                    inner.push(name.text.clone());
                    self.items(j + 1, close, &inner, ctx);
                    return close + 1;
                }
                _ => j += 1,
            }
        }
        j
    }

    /// `impl<…> [Trait for] Type { … }`. `i` points at `impl`.
    fn impl_item(&mut self, i: usize, end: usize, module: &[String]) -> usize {
        let mut j = i + 1;
        if j < end && self.toks[j].kind == TokenKind::Punct && self.toks[j].text == "<" {
            j = skip_angles(self.toks, j);
        }
        // Collect path idents until `{`, splitting on a `for` keyword.
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        while j < end {
            let t = &self.toks[j];
            if t.kind == TokenKind::Punct && t.text == "{" {
                break;
            }
            if t.is_kw("for") {
                saw_for = true;
            } else if t.is_kw("where") {
                // `impl Trait for Type where …` — type idents are done.
                while j < end
                    && !(self.toks[j].kind == TokenKind::Punct && self.toks[j].text == "{")
                {
                    j += 1;
                }
                break;
            } else if t.kind == TokenKind::Punct && t.text == "<" {
                j = skip_angles(self.toks, j);
                continue;
            } else if t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
                if saw_for {
                    after_for.push(t.text.clone());
                } else {
                    before_for.push(t.text.clone());
                }
            }
            j += 1;
        }
        if j >= end {
            return end;
        }
        let close = self.matching_brace(j, end);
        // `impl Type` → type = last path ident; `impl Trait for Type` →
        // trait = last ident before `for`, type = first ident after.
        let (ty, trait_name) = if saw_for {
            (after_for.first().cloned(), before_for.last().cloned())
        } else {
            (before_for.last().cloned(), None)
        };
        let ctx = ImplCtx::Impl { ty, trait_name };
        self.items(j + 1, close, module, &ctx);
        close + 1
    }

    /// `trait Name { … }`. `i` points at `trait`.
    fn trait_item(&mut self, i: usize, end: usize, module: &[String]) -> usize {
        let Some(name) = self.toks.get(i + 1) else {
            return i + 1;
        };
        if name.kind != TokenKind::Ident {
            return i + 1;
        }
        let mut j = i + 2;
        while j < end && !(self.toks[j].kind == TokenKind::Punct && self.toks[j].text == "{") {
            if self.toks[j].kind == TokenKind::Punct && self.toks[j].text == ";" {
                return j + 1; // `trait Alias = …;` or malformed
            }
            j += 1;
        }
        if j >= end {
            return end;
        }
        let close = self.matching_brace(j, end);
        let ctx = ImplCtx::Trait(name.text.clone());
        self.items(j + 1, close, module, &ctx);
        close + 1
    }

    /// `fn name(…) -> T { … }` or `fn name(…);`. `i` points at `fn`.
    fn fn_item(&mut self, i: usize, end: usize, module: &[String], ctx: &ImplCtx) -> usize {
        let Some(name) = self.toks.get(i + 1) else {
            return i + 1;
        };
        if name.kind != TokenKind::Ident {
            // `fn(…)` pointer type — not an item.
            return i + 1;
        }
        // Signature runs to the body `{` or a terminating `;`, tracking
        // paren depth (param lists, `Fn(…)` bounds) and generics.
        let mut j = i + 2;
        let mut paren: isize = 0;
        let mut body_open = None;
        while j < end {
            let t = &self.toks[j];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "(") => paren += 1,
                (TokenKind::Punct, ")") => paren -= 1,
                (TokenKind::Punct, "<") if paren == 0 => {
                    j = skip_angles(self.toks, j);
                    continue;
                }
                (TokenKind::Punct, "{") if paren == 0 => {
                    body_open = Some(j);
                    break;
                }
                (TokenKind::Punct, ";") if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let is_pub = self.fn_is_pub(i) || matches!(ctx, ImplCtx::Trait(_));
        let (self_type, trait_impl, in_trait_decl) = match ctx {
            ImplCtx::None => (None, None, false),
            ImplCtx::Impl { ty, trait_name } => (ty.clone(), trait_name.clone(), false),
            ImplCtx::Trait(t) => (Some(t.clone()), None, true),
        };
        let line = self.toks[i].line;
        let mut def = FnDef {
            name: name.text.clone(),
            module: module.to_vec(),
            self_type,
            trait_impl,
            in_trait_decl,
            has_body: body_open.is_some(),
            is_pub,
            line,
            end_line: line,
            is_test: self.file.in_test_code(line),
            calls: Vec::new(),
            sites: Vec::new(),
        };
        let next = match body_open {
            Some(open) => {
                let close = self.matching_brace(open, end);
                def.end_line = self.toks[close.min(self.toks.len() - 1)].line;
                extract_body(self.file, self.toks, open + 1, close, &mut def);
                // Nested items (incl. nested fns) inside the body.
                self.items(open + 1, close, module, &ImplCtx::None);
                close + 1
            }
            None => {
                def.end_line = self.toks.get(j).map_or(line, |t| t.line);
                j + 1
            }
        };
        self.fns.push(def);
        next
    }

    /// Looks backward from the `fn` keyword across modifiers
    /// (`pub(crate) const unsafe extern "C" async`) for a `pub`.
    fn fn_is_pub(&self, fn_idx: usize) -> bool {
        let mut k = fn_idx;
        while k > 0 {
            let t = &self.toks[k - 1];
            let modifier = matches!(t.kind, TokenKind::Str)
                || (t.kind == TokenKind::Punct && (t.text == "(" || t.text == ")"))
                || (t.kind == TokenKind::Ident
                    && matches!(
                        t.text.as_str(),
                        "pub"
                            | "const"
                            | "unsafe"
                            | "extern"
                            | "async"
                            | "crate"
                            | "in"
                            | "super"
                            | "self"
                    ));
            if !modifier {
                return false;
            }
            if t.is_kw("pub") {
                return true;
            }
            k -= 1;
        }
        false
    }
}

/// Removes, from each fn, the calls/sites whose lines fall inside a
/// *nested* fn's span (they belong to the nested fn, which collected
/// them itself).
fn strip_nested(fns: &mut [FnDef]) {
    let spans: Vec<(usize, usize, usize)> = fns
        .iter()
        .enumerate()
        .map(|(i, f)| (i, f.line, f.end_line))
        .collect();
    for (i, f) in fns.iter_mut().enumerate() {
        let (line, end) = (f.line, f.end_line);
        let nested: Vec<(usize, usize)> = spans
            .iter()
            .filter(|&&(j, l, e)| j != i && l > line && e <= end)
            .map(|&(_, l, e)| (l, e))
            .collect();
        if nested.is_empty() {
            continue;
        }
        let inside = |l: usize| nested.iter().any(|&(a, b)| l >= a && l <= b);
        f.calls.retain(|c| !inside(c.line));
        f.sites.retain(|s| !inside(s.line));
    }
}

/// Scans a fn body's token range for call sites and intrinsic sites.
fn extract_body(file: &SourceFile, toks: &[Token], start: usize, end: usize, def: &mut FnDef) {
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || (KEYWORDS.contains(&t.text.as_str()) && !t.raw) {
            // Bare taint idents are interesting even outside call position.
            i += 1;
            continue;
        }
        let line = t.line;
        // Hash collections: any mention in a body is a nondeterminism
        // source (mirrors the line-level rule).
        if t.text == "HashMap" || t.text == "HashSet" {
            def.sites.push(Site {
                kind: SiteKind::Taint,
                what: t.text.clone(),
                line,
                allowed: taint_allowed(file, line),
            });
            i += 1;
            continue;
        }
        // Macro invocation `name!(…)`.
        if matches!(toks.get(i + 1), Some(n) if n.kind == TokenKind::Punct && n.text == "!")
            && matches!(
                toks.get(i + 2),
                Some(n) if n.kind == TokenKind::Punct && (n.text == "(" || n.text == "[" || n.text == "{")
            )
        {
            let name = t.text.clone();
            if PANIC_MACROS.contains(&name.as_str()) {
                def.sites.push(Site {
                    kind: SiteKind::Panic,
                    what: format!("{name}!"),
                    line,
                    allowed: panic_allowed(file, line),
                });
            } else if ALLOC_MACROS.contains(&name.as_str()) {
                def.sites.push(Site {
                    kind: SiteKind::Alloc,
                    what: format!("{name}!"),
                    line,
                    allowed: alloc_allowed(file, line),
                });
            } else {
                def.calls.push(CallSite {
                    kind: CallKind::Macro { name },
                    line,
                });
            }
            i += 3;
            continue;
        }
        // Assemble the full `a::b::name` path ending at this ident.
        let mut segments = vec![t.text.clone()];
        {
            let mut k = i;
            while k >= 2
                && matches!(toks.get(k - 1), Some(p) if p.kind == TokenKind::Op && p.text == "::")
                && matches!(toks.get(k - 2), Some(p) if p.kind == TokenKind::Ident)
            {
                segments.insert(0, toks[k - 2].text.clone());
                k -= 2;
            }
        }
        // Call position: `(` directly after, or after a turbofish.
        let mut after = i + 1;
        if matches!(toks.get(after), Some(n) if n.kind == TokenKind::Op && n.text == "::")
            && matches!(toks.get(after + 1), Some(n) if n.kind == TokenKind::Punct && n.text == "<")
        {
            after = skip_angles(toks, after + 1);
        }
        let is_call =
            matches!(toks.get(after), Some(n) if n.kind == TokenKind::Punct && n.text == "(");
        let is_method = segments.len() == 1
            && matches!(toks.get(i.wrapping_sub(1)), Some(p) if p.kind == TokenKind::Punct && p.text == ".");
        let name = t.text.as_str();

        if is_call && is_method {
            if PANIC_METHODS.contains(&name) {
                def.sites.push(Site {
                    kind: SiteKind::Panic,
                    what: format!(".{name}()"),
                    line,
                    allowed: panic_allowed(file, line),
                });
            } else {
                if ALLOC_METHODS.contains(&name) {
                    def.sites.push(Site {
                        kind: SiteKind::Alloc,
                        what: format!(".{name}()"),
                        line,
                        allowed: alloc_allowed(file, line),
                    });
                }
                def.calls.push(CallSite {
                    kind: CallKind::Method {
                        name: name.to_string(),
                    },
                    line,
                });
            }
            i = after + 1;
            continue;
        }

        if segments.len() >= 2 {
            let pen = segments[segments.len() - 2].as_str();
            let last = segments[segments.len() - 1].as_str();
            // Clock / thread-id taint sources.
            if (pen == "Instant" || pen == "SystemTime") && last == "now" {
                def.sites.push(Site {
                    kind: SiteKind::Taint,
                    what: format!("{pen}::now"),
                    line,
                    allowed: taint_allowed(file, line),
                });
                i = after + 1;
                continue;
            }
            if pen == "thread" && last == "current" {
                def.sites.push(Site {
                    kind: SiteKind::Taint,
                    what: "thread::current".to_string(),
                    line,
                    allowed: taint_allowed(file, line),
                });
                i = after + 1;
                continue;
            }
            // Allocating constructors.
            if is_call && ALLOC_PATHS.contains(&(pen, last)) {
                def.sites.push(Site {
                    kind: SiteKind::Alloc,
                    what: format!("{pen}::{last}"),
                    line,
                    allowed: alloc_allowed(file, line),
                });
                i = after + 1;
                continue;
            }
        }

        if is_call || segments.len() >= 2 {
            // A direct call, or a multi-segment path used as a function
            // value (`par_map(xs, Self::step)`). Single-segment non-call
            // idents are far too noisy to treat as references.
            def.calls.push(CallSite {
                kind: CallKind::Path { segments },
                line,
            });
        }
        i = after.max(i + 1);
    }
}

fn panic_allowed(file: &SourceFile, line: usize) -> bool {
    file.allows(line, "no-unwrap-in-lib") || file.allows(line, "panic-reachable")
}

fn alloc_allowed(file: &SourceFile, line: usize) -> bool {
    file.allows(line, "hot-path-alloc")
}

fn taint_allowed(file: &SourceFile, line: usize) -> bool {
    file.allows(line, "determinism") || file.allows(line, "determinism-taint")
}

/// Function-level suppression: a marker whose target line is the fn
/// header itself or any attribute/doc line directly above it.
pub fn fn_level_allowed(file: &SourceFile, header_line: usize, rule: &str) -> bool {
    let mut l = header_line;
    loop {
        if file.allows(l, rule) {
            return true;
        }
        if l <= 1 {
            return false;
        }
        let prev = l - 1;
        if file.doc_lines.contains(&prev) || file.attr_lines.contains(&prev) {
            l = prev;
            continue;
        }
        return false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, src: &str) -> FileAst {
        parse_file(&SourceFile::parse(path, src))
    }

    #[test]
    fn items_and_modules_are_tracked() {
        let src = "pub fn top() {}\nmod inner {\n    fn nested_free() {}\n    mod deeper { pub fn deep() {} }\n}\n";
        let ast = parse("crates/core/src/lib.rs", src);
        let names: Vec<(String, Vec<String>)> = ast
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.module.clone()))
            .collect();
        assert!(names.contains(&("top".into(), vec![])));
        assert!(names.contains(&("nested_free".into(), vec!["inner".into()])));
        assert!(names.contains(&("deep".into(), vec!["inner".into(), "deeper".into()])));
        assert!(ast.fns.iter().find(|f| f.name == "top").unwrap().is_pub);
        assert!(
            !ast.fns
                .iter()
                .find(|f| f.name == "nested_free")
                .unwrap()
                .is_pub
        );
    }

    #[test]
    fn impl_blocks_attach_self_type_and_trait() {
        let src = "struct Foo;\nimpl Foo { pub fn m(&self) {} }\nimpl Clone for Foo { fn clone(&self) -> Foo { Foo } }\n";
        let ast = parse("crates/core/src/x.rs", src);
        let m = ast.fns.iter().find(|f| f.name == "m").unwrap();
        assert_eq!(m.self_type.as_deref(), Some("Foo"));
        assert_eq!(m.trait_impl, None);
        let c = ast.fns.iter().find(|f| f.name == "clone").unwrap();
        assert_eq!(c.self_type.as_deref(), Some("Foo"));
        assert_eq!(c.trait_impl.as_deref(), Some("Clone"));
    }

    #[test]
    fn generic_impl_headers_parse() {
        let src = "impl<'a, T: Iterator<Item = Vec<u8>>> Wrapper<'a, T> { fn g(&self) { helper() } }\nfn helper() {}\n";
        let ast = parse("crates/core/src/x.rs", src);
        let g = ast.fns.iter().find(|f| f.name == "g").unwrap();
        assert_eq!(g.self_type.as_deref(), Some("Wrapper"));
        assert!(g.calls.iter().any(|c| c.kind
            == CallKind::Path {
                segments: vec!["helper".into()]
            }));
    }

    #[test]
    fn trait_decls_record_signatures_and_default_bodies() {
        let src = "trait Model {\n    fn fit(&mut self);\n    fn describe(&self) -> String { format!(\"m\") }\n}\n";
        let ast = parse("crates/models/src/x.rs", src);
        let fit = ast.fns.iter().find(|f| f.name == "fit").unwrap();
        assert!(fit.in_trait_decl && !fit.has_body && fit.is_pub);
        assert_eq!(fit.self_type.as_deref(), Some("Model"));
        let desc = ast.fns.iter().find(|f| f.name == "describe").unwrap();
        assert!(desc.has_body);
        assert!(desc
            .sites
            .iter()
            .any(|s| s.kind == SiteKind::Alloc && s.what == "format!"));
    }

    #[test]
    fn call_sites_cover_methods_paths_and_turbofish() {
        let src = "fn f(xs: &[u64]) {\n    helper();\n    kernels::gemm(1);\n    Matrix::zeros(2, 2);\n    xs.iter().collect::<Vec<_>>();\n    obj.predict(3);\n}\n";
        let ast = parse("crates/core/src/x.rs", src);
        let f = &ast.fns[0];
        let has_path = |segs: &[&str]| {
            f.calls.iter().any(|c| {
                c.kind
                    == CallKind::Path {
                        segments: segs.iter().map(|s| s.to_string()).collect(),
                    }
            })
        };
        assert!(has_path(&["helper"]));
        assert!(has_path(&["kernels", "gemm"]));
        assert!(has_path(&["Matrix", "zeros"]));
        assert!(f
            .calls
            .iter()
            .any(|c| matches!(&c.kind, CallKind::Method { name } if name == "predict")));
        // `.collect::<Vec<_>>()` is an alloc site *and* a method call.
        assert!(f
            .sites
            .iter()
            .any(|s| s.kind == SiteKind::Alloc && s.what == ".collect()"));
    }

    #[test]
    fn closures_attribute_calls_to_enclosing_fn() {
        let src = "fn outer(xs: Vec<u64>) {\n    par_map(xs, |x| inner(x));\n}\nfn inner(x: u64) -> u64 { x }\n";
        let ast = parse("crates/core/src/x.rs", src);
        let outer = ast.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.calls.iter().any(|c| c.kind
            == CallKind::Path {
                segments: vec!["inner".into()]
            }));
    }

    #[test]
    fn nested_fns_own_their_call_sites() {
        let src = "fn outer() {\n    fn nested() { danger(); }\n    nested();\n}\nfn danger() {}\n";
        let ast = parse("crates/core/src/x.rs", src);
        let outer = ast.fns.iter().find(|f| f.name == "outer").unwrap();
        let nested = ast.fns.iter().find(|f| f.name == "nested").unwrap();
        assert!(nested.calls.iter().any(|c| c.kind
            == CallKind::Path {
                segments: vec!["danger".into()]
            }));
        assert!(!outer.calls.iter().any(|c| c.kind
            == CallKind::Path {
                segments: vec!["danger".into()]
            }));
        assert!(outer.calls.iter().any(|c| c.kind
            == CallKind::Path {
                segments: vec!["nested".into()]
            }));
    }

    #[test]
    fn intrinsic_sites_with_allow_markers() {
        let src = "fn f(v: Option<u8>) {\n    v.unwrap();\n    v.unwrap(); // eadrl-lint: allow(no-unwrap-in-lib): guarded above\n    let t = Instant::now();\n    let m: HashMap<u8, u8>;\n}\n";
        let ast = parse("crates/core/src/x.rs", src);
        let f = &ast.fns[0];
        let panics: Vec<_> = f
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Panic)
            .collect();
        assert_eq!(panics.len(), 2);
        assert!(!panics[0].allowed);
        assert!(panics[1].allowed);
        assert!(f
            .sites
            .iter()
            .any(|s| s.kind == SiteKind::Taint && s.what == "Instant::now"));
        assert!(f
            .sites
            .iter()
            .any(|s| s.kind == SiteKind::Taint && s.what == "HashMap"));
    }

    #[test]
    fn use_map_resolves_aliases_groups_and_crate_prefix() {
        let src = "use eadrl_linalg::kernels;\nuse crate::util::{helper, other as o};\nuse std::collections::BTreeMap;\n";
        let ast = parse("crates/core/src/x.rs", src);
        assert_eq!(
            ast.uses.get("kernels"),
            Some(&vec!["eadrl_linalg".to_string(), "kernels".to_string()])
        );
        assert_eq!(
            ast.uses.get("helper"),
            Some(&vec![
                "eadrl_core".to_string(),
                "util".to_string(),
                "helper".to_string()
            ])
        );
        assert_eq!(
            ast.uses.get("o"),
            Some(&vec![
                "eadrl_core".to_string(),
                "util".to_string(),
                "other".to_string()
            ])
        );
    }

    #[test]
    fn raw_identifiers_do_not_derail_items() {
        let src = "fn f() { let r#fn = 1; let r#type = r#fn + 1; g(r#type); }\nfn g(x: i32) {}\n";
        let ast = parse("crates/core/src/x.rs", src);
        assert_eq!(ast.fns.len(), 2, "r#fn must not open a phantom item");
        assert!(ast.fns[0].calls.iter().any(|c| c.kind
            == CallKind::Path {
                segments: vec!["g".into()]
            }));
    }

    #[test]
    fn crate_attribution_prefers_last_crates_segment() {
        assert_eq!(
            crate_of("crates/lint/tests/fixtures/deep_bad/crates/mini/src/lib.rs"),
            ("mini".to_string(), true)
        );
        assert_eq!(crate_of("crates/nn/src/dense.rs"), ("nn".to_string(), true));
        assert_eq!(
            crate_of("crates/nn/tests/alloc.rs"),
            ("nn".to_string(), false)
        );
        assert_eq!(crate_of("src/lib.rs"), ("eadrl".to_string(), true));
    }

    #[test]
    fn fn_level_markers_skip_attr_and_doc_lines() {
        let src = "// eadrl-lint: allow(panic-reachable): poisoning needs a prior panic\n#[inline]\n/// Docs.\npub fn locked() {}\n";
        let file = SourceFile::parse("crates/obs/src/x.rs", src);
        let ast = parse_file(&file);
        let f = &ast.fns[0];
        assert!(fn_level_allowed(&file, f.line, "panic-reachable"));
        assert!(!fn_level_allowed(&file, f.line, "hot-path-alloc"));
    }
}
