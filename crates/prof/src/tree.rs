//! Span-tree reconstruction and time attribution.
//!
//! Span events carry their full `/`-joined path at close time, so the
//! tree is a trie over path segments — no begin/end pairing is needed
//! and interleaved threads cannot corrupt it (equal paths from
//! different threads aggregate into one node, which is exactly the
//! cross-thread attribution a profile wants).
//!
//! Per node: call count, **total time** (sum of span durations),
//! **self time** (total minus direct children's totals), and
//! nearest-rank p50/p95/p99 over the individual durations. Two
//! honest-profile flags:
//!
//! * `open` — the path only ever appeared as a prefix of deeper spans:
//!   its own close event is missing (process killed mid-span, or the
//!   ring buffer evicted it). Totals for it are unknown, not zero.
//! * `overlap` — direct children's summed total exceeds the node's own
//!   total. Under `eadrl-par` that is *expected*: workers run
//!   concurrently, so their busy time can exceed the parent's
//!   wall-clock. Self time clamps to zero rather than going negative.
//!
//! [`TreeOptions::collapse`] elides segments by name: spans *of* an
//! elided name are dropped (their per-chunk counts and overlapping
//! busy time are thread-count-dependent) and deeper descendants are
//! re-parented past the segment. Collapsing `par.worker` makes the
//! tree **shape** independent of `EADRL_PAR_THREADS` — worker-chunk
//! spans are the one place where the span *count* is a function of the
//! thread count.

use crate::trace::Trace;
use eadrl_obs::EventKind;
use std::collections::BTreeMap;

/// Options for [`SpanTree::build`].
#[derive(Debug, Clone, Default)]
pub struct TreeOptions {
    /// Leaf segment names to elide from every path (see module docs).
    pub collapse: Vec<String>,
}

impl TreeOptions {
    /// The options that make tree shape thread-count-independent:
    /// collapse `par.worker` (chunk-per-worker spans).
    pub fn shape_stable() -> TreeOptions {
        TreeOptions {
            collapse: vec!["par.worker".to_string()],
        }
    }
}

/// One aggregated node of the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Full `/`-joined path.
    pub path: String,
    /// Nesting depth (root spans are 0).
    pub depth: usize,
    /// Number of closed spans at this path.
    pub count: u64,
    /// Sum of span durations, µs.
    pub total_us: u64,
    /// Total minus direct children's totals, clamped at zero, µs.
    pub self_us: u64,
    /// Children's summed total exceeded this node's total (parallel
    /// children, or an `open` node with unknown total).
    pub overlap: bool,
    /// No close event for this path — it exists only as a prefix of
    /// deeper spans (truncated trace).
    pub open: bool,
    /// Nearest-rank percentiles over individual durations, µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
}

/// The reconstructed, aggregated span tree in depth-first (pre-)order.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// Nodes in DFS order: every parent precedes its children.
    pub nodes: Vec<SpanNode>,
}

fn duration_of(event: &eadrl_obs::Event) -> u64 {
    match event.get("duration_us") {
        Some(eadrl_obs::Value::U64(d)) => *d,
        Some(eadrl_obs::Value::F64(d)) => *d as u64,
        _ => 0,
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl SpanTree {
    /// Builds the aggregated tree from a trace's span events.
    pub fn build(trace: &Trace, options: &TreeOptions) -> SpanTree {
        // Keyed by segment vector so ordering is segment-wise: parents
        // (prefixes) sort before children, and siblings group together
        // even when one sibling's name is a string-prefix of another's.
        let mut durations: BTreeMap<Vec<String>, Vec<u64>> = BTreeMap::new();
        for event in &trace.events {
            if event.kind != EventKind::Span {
                continue;
            }
            let raw: Vec<&str> = event.name.split('/').collect();
            // A span whose own leaf is collapsed is dropped outright:
            // its measurements (count, duration) are per-chunk and
            // thread-count-dependent, and its busy time overlaps the
            // parent's wall-clock rather than adding to it.
            if raw
                .last()
                .is_some_and(|leaf| options.collapse.iter().any(|c| c == leaf))
            {
                continue;
            }
            let segments: Vec<String> = raw
                .into_iter()
                .filter(|seg| !options.collapse.iter().any(|c| c == seg))
                .map(str::to_string)
                .collect();
            if segments.is_empty() {
                continue;
            }
            durations
                .entry(segments)
                .or_default()
                .push(duration_of(event));
        }

        // Synthesize prefix nodes for paths whose own close event is
        // missing, so the tree stays connected on truncated traces.
        let prefixes: Vec<Vec<String>> = durations
            .keys()
            .flat_map(|segs| (1..segs.len()).map(|k| segs[..k].to_vec()))
            .collect();
        for prefix in prefixes {
            durations.entry(prefix).or_default();
        }

        // Direct-children totals, for self time.
        let totals: BTreeMap<&[String], u64> = durations
            .iter()
            .map(|(segs, ds)| (segs.as_slice(), ds.iter().sum()))
            .collect();
        let mut child_total: BTreeMap<&[String], u64> = BTreeMap::new();
        for (segs, total) in &totals {
            if segs.len() > 1 {
                *child_total.entry(&segs[..segs.len() - 1]).or_default() += total;
            }
        }

        let mut nodes = Vec::with_capacity(durations.len());
        for (segs, ds) in &durations {
            let mut sorted = ds.clone();
            sorted.sort_unstable();
            let count = sorted.len() as u64;
            let total_us: u64 = sorted.iter().sum();
            let children = child_total.get(segs.as_slice()).copied().unwrap_or(0);
            let open = count == 0;
            nodes.push(SpanNode {
                path: segs.join("/"),
                depth: segs.len() - 1,
                count,
                total_us,
                self_us: total_us.saturating_sub(children),
                overlap: children > total_us,
                open,
                p50_us: percentile(&sorted, 50.0),
                p95_us: percentile(&sorted, 95.0),
                p99_us: percentile(&sorted, 99.0),
            });
        }
        SpanTree { nodes }
    }

    /// The node at `path`, if present.
    pub fn get(&self, path: &str) -> Option<&SpanNode> {
        self.nodes.iter().find(|n| n.path == path)
    }

    /// The deterministic shape table: `(path, count)` rows in DFS
    /// order. With [`TreeOptions::shape_stable`] this is identical at
    /// every `EADRL_PAR_THREADS` — the cross-thread golden contract.
    pub fn shape(&self) -> Vec<(String, u64)> {
        self.nodes
            .iter()
            .map(|n| (n.path.clone(), n.count))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadrl_obs::{Event, EventKind, Level};

    fn span(path: &str, us: u64) -> String {
        Event::new(path, EventKind::Span, Level::Info)
            .field("duration_us", us)
            .to_json_line()
    }

    #[test]
    fn attributes_total_self_and_counts() {
        let text = [
            span("root/child.a", 30),
            span("root/child.a", 10),
            span("root/child.b", 20),
            span("root", 100),
        ]
        .join("\n");
        let tree = SpanTree::build(&Trace::from_jsonl(&text), &TreeOptions::default());
        let root = tree.get("root").expect("root");
        assert_eq!((root.count, root.total_us, root.self_us), (1, 100, 40));
        assert!(!root.overlap && !root.open);
        let a = tree.get("root/child.a").expect("a");
        assert_eq!((a.count, a.total_us, a.self_us), (2, 40, 40));
        assert_eq!((a.p50_us, a.p95_us, a.p99_us), (10, 30, 30));
        // DFS order: parent first.
        assert_eq!(tree.nodes[0].path, "root");
    }

    #[test]
    fn open_parent_and_overlap_are_flagged() {
        // Parent never closed (killed process): only children made it.
        let text = [span("dead.parent/kid", 5), span("dead.parent/kid", 7)].join("\n");
        let tree = SpanTree::build(&Trace::from_jsonl(&text), &TreeOptions::default());
        let parent = tree.get("dead.parent").expect("synthesized");
        assert!(parent.open && parent.overlap);
        assert_eq!((parent.count, parent.total_us, parent.self_us), (0, 0, 0));

        // Parallel children: worker busy time exceeds parent wall-clock.
        let text = [span("map", 10), span("map/w", 8), span("map/w", 9)].join("\n");
        let tree = SpanTree::build(&Trace::from_jsonl(&text), &TreeOptions::default());
        let map = tree.get("map").expect("map");
        assert!(map.overlap && !map.open);
        assert_eq!(map.self_us, 0, "self time clamps, never negative");
    }

    #[test]
    fn zero_duration_spans_are_counted() {
        let text = [span("z.fast", 0), span("z.fast", 0)].join("\n");
        let tree = SpanTree::build(&Trace::from_jsonl(&text), &TreeOptions::default());
        let z = tree.get("z.fast").expect("z");
        assert_eq!((z.count, z.total_us, z.p99_us), (2, 0, 0));
    }

    #[test]
    fn collapse_reparents_children_and_elides_the_segment() {
        let text = [
            span("fit/par.map/par.worker/task.x", 4),
            span("fit/par.map/par.worker", 5),
            span("fit/par.map/par.worker/task.x", 6),
            span("fit/par.map/par.worker", 7),
            span("fit/par.map", 12),
            span("fit", 20),
        ]
        .join("\n");
        let tree = SpanTree::build(&Trace::from_jsonl(&text), &TreeOptions::shape_stable());
        assert!(tree.get("fit/par.map/par.worker").is_none());
        let task = tree.get("fit/par.map/task.x").expect("re-parented");
        assert_eq!((task.count, task.total_us), (2, 10));
        // Worker spans' own time folds into par.map's self time.
        let map = tree.get("fit/par.map").expect("map");
        assert_eq!(map.self_us, 12 - 10);
    }

    #[test]
    fn interleaved_threads_with_identical_paths_aggregate() {
        let mut e1 =
            Event::new("job/step.a", EventKind::Span, Level::Info).field("duration_us", 3u64);
        e1.thread = 1;
        let mut e2 =
            Event::new("job/step.a", EventKind::Span, Level::Info).field("duration_us", 5u64);
        e2.thread = 2;
        let text = [e1.to_json_line(), e2.to_json_line(), span("job", 10)].join("\n");
        let tree = SpanTree::build(&Trace::from_jsonl(&text), &TreeOptions::default());
        let step = tree.get("job/step.a").expect("step");
        assert_eq!((step.count, step.total_us), (2, 8));
    }

    #[test]
    fn sibling_name_prefixes_do_not_break_dfs_grouping() {
        // "step" is a string-prefix of "step.two": byte-wise path sorting
        // would interleave their subtrees; segment-wise sorting must not.
        let text = [
            span("r/step.two", 1),
            span("r/step/deep.one", 1),
            span("r/step", 3),
            span("r", 5),
        ]
        .join("\n");
        let tree = SpanTree::build(&Trace::from_jsonl(&text), &TreeOptions::default());
        let paths: Vec<&str> = tree.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, vec!["r", "r/step", "r/step/deep.one", "r/step.two"]);
    }
}
