//! Support-vector regression trained in the primal by SGD, with an
//! optional random-Fourier-feature map approximating the RBF kernel.

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use eadrl_rng::DetRng;

/// Feature map applied before the linear SVR.
#[derive(Debug, Clone)]
enum FeatureMap {
    /// Raw features (linear SVR).
    Linear,
    /// Random Fourier features `√(2/D) cos(ω·x + b)` approximating the RBF
    /// kernel `exp(-γ ||a-b||²)` (Rahimi & Recht).
    Rff {
        gamma: f64,
        n_features: usize,
        seed: u64,
        omegas: Vec<Vec<f64>>,
        phases: Vec<f64>,
    },
}

/// ε-insensitive SVR in the primal:
/// `min ½||w||² + C Σ max(0, |y - w·φ(x) - b| - ε)`,
/// optimized by epoch-shuffled subgradient descent.
#[derive(Debug, Clone)]
pub struct SvrRegressor {
    c: f64,
    epsilon: f64,
    epochs: usize,
    map: FeatureMap,
    w: Vec<f64>,
    b: f64,
}

impl SvrRegressor {
    /// Linear SVR.
    pub fn linear(c: f64, epsilon: f64) -> Self {
        SvrRegressor {
            c: c.max(1e-6),
            epsilon: epsilon.max(0.0),
            epochs: 60,
            map: FeatureMap::Linear,
            w: Vec::new(),
            b: 0.0,
        }
    }

    /// RBF-kernel SVR via `n_features` random Fourier features with kernel
    /// width `gamma`.
    pub fn rbf(c: f64, epsilon: f64, gamma: f64, n_features: usize, seed: u64) -> Self {
        SvrRegressor {
            c: c.max(1e-6),
            epsilon: epsilon.max(0.0),
            epochs: 60,
            map: FeatureMap::Rff {
                gamma: gamma.max(1e-9),
                n_features: n_features.max(4),
                seed,
                omegas: Vec::new(),
                phases: Vec::new(),
            },
            w: Vec::new(),
            b: 0.0,
        }
    }

    fn features(&self, input: &[f64]) -> Vec<f64> {
        match &self.map {
            FeatureMap::Linear => input.to_vec(),
            FeatureMap::Rff {
                omegas,
                phases,
                n_features,
                ..
            } => {
                let scale = (2.0 / *n_features as f64).sqrt();
                omegas
                    .iter()
                    .zip(phases.iter())
                    .map(|(w, &p)| {
                        let dot: f64 = w.iter().zip(input.iter()).map(|(a, b)| a * b).sum();
                        scale * (dot + p).cos()
                    })
                    .collect()
            }
        }
    }
}

impl TabularModel for SvrRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let in_dim = inputs[0].len();
        // Materialize the RFF projection if needed.
        if let FeatureMap::Rff {
            gamma,
            n_features,
            seed,
            omegas,
            phases,
        } = &mut self.map
        {
            let mut rng = DetRng::seed_from_u64(*seed);
            let sigma = (2.0 * *gamma).sqrt();
            *omegas = (0..*n_features)
                .map(|_| (0..in_dim).map(|_| gaussian(&mut rng) * sigma).collect())
                .collect();
            *phases = (0..*n_features)
                .map(|_| rng.random_range(0.0..2.0 * std::f64::consts::PI))
                .collect();
        }
        let phi: Vec<Vec<f64>> = inputs.iter().map(|x| self.features(x)).collect();
        let dim = phi[0].len();
        self.w = vec![0.0; dim];
        self.b = targets.iter().sum::<f64>() / targets.len() as f64;

        let n = inputs.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = DetRng::seed_from_u64(SVR_SHUFFLE_SEED);
        for epoch in 0..self.epochs {
            // Fisher–Yates shuffle per epoch.
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let lr = 0.1 / (1.0 + epoch as f64 * 0.2);
            for &i in &order {
                let pred: f64 = self
                    .w
                    .iter()
                    .zip(phi[i].iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
                    + self.b;
                let err = targets[i] - pred;
                // Subgradient of the ε-insensitive loss + L2 term (scaled
                // by 1/(C n) so C behaves like the usual trade-off knob).
                let reg = 1.0 / (self.c * n as f64);
                let sign = if err > self.epsilon {
                    1.0
                } else if err < -self.epsilon {
                    -1.0
                } else {
                    0.0
                };
                for (w, &f) in self.w.iter_mut().zip(phi[i].iter()) {
                    *w += lr * (sign * f - reg * *w);
                }
                self.b += lr * sign;
            }
        }
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        if self.w.is_empty() {
            return 0.0;
        }
        let phi = self.features(input);
        self.w
            .iter()
            .zip(phi.iter())
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.b
    }
}

/// Fixed seed for the per-epoch SGD shuffle, so fits are reproducible.
const SVR_SHUFFLE_SEED: u64 = 0x5B52;

fn gaussian(rng: &mut DetRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A linear SVR forecaster over embedded windows (paper family **SVR**).
pub fn svr_linear(k: usize, c: f64, epsilon: f64) -> Windowed<SvrRegressor> {
    Windowed::new(
        format!("SVR(linear,C={c})"),
        k,
        SvrRegressor::linear(c, epsilon),
    )
}

/// An RBF-kernel SVR forecaster over embedded windows.
pub fn svr_rbf(k: usize, c: f64, epsilon: f64, gamma: f64, seed: u64) -> Windowed<SvrRegressor> {
    Windowed::new(
        format!("SVR(rbf,γ={gamma})"),
        k,
        SvrRegressor::rbf(c, epsilon, gamma, 64, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    #[test]
    fn linear_svr_fits_line() {
        let inputs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 25.0 - 1.0]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| 2.0 * x[0] + 0.5).collect();
        let mut svr = SvrRegressor::linear(10.0, 0.01);
        svr.fit(&inputs, &targets).unwrap();
        for (x, t) in inputs.iter().zip(targets.iter()).step_by(9) {
            assert!(
                (svr.predict(x) - t).abs() < 0.15,
                "at {x:?}: {} vs {t}",
                svr.predict(x)
            );
        }
    }

    #[test]
    fn rbf_svr_fits_nonlinearity_better_than_linear() {
        let inputs: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 40.0 - 1.0]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        let sse = |svr: &mut SvrRegressor| {
            svr.fit(&inputs, &targets).unwrap();
            inputs
                .iter()
                .zip(targets.iter())
                .map(|(x, t)| (svr.predict(x) - t).powi(2))
                .sum::<f64>()
        };
        let lin = sse(&mut SvrRegressor::linear(10.0, 0.01));
        let rbf = sse(&mut SvrRegressor::rbf(10.0, 0.01, 2.0, 128, 7));
        assert!(rbf < 0.5 * lin, "rbf {rbf} vs lin {lin}");
    }

    #[test]
    fn epsilon_tube_ignores_small_errors() {
        // With a huge ε, no update fires and the model predicts its bias.
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..20).map(|i| 5.0 + 0.001 * i as f64).collect();
        let mean = targets.iter().sum::<f64>() / 20.0;
        let mut svr = SvrRegressor::linear(1.0, 100.0);
        svr.fit(&inputs, &targets).unwrap();
        assert!((svr.predict(&[3.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn fit_is_deterministic() {
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.1]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x[0] * x[0]).collect();
        let mut a = SvrRegressor::rbf(5.0, 0.05, 1.0, 32, 3);
        let mut b = SvrRegressor::rbf(5.0, 0.05, 1.0, 32, 3);
        a.fit(&inputs, &targets).unwrap();
        b.fit(&inputs, &targets).unwrap();
        assert_eq!(a.predict(&[1.5]), b.predict(&[1.5]));
    }

    #[test]
    fn svr_forecaster_on_trend_series() {
        let series: Vec<f64> = (0..120).map(|t| 0.5 * t as f64 + 10.0).collect();
        let mut m = svr_linear(5, 10.0, 0.01);
        m.fit(&series).unwrap();
        let pred = m.predict_next(&series);
        assert!((pred - 70.0).abs() < 3.0, "pred {pred}");
    }

    #[test]
    fn unfitted_predicts_zero() {
        let svr = SvrRegressor::linear(1.0, 0.1);
        assert_eq!(svr.predict(&[1.0]), 0.0);
    }
}
