//! CLI for `eadrl-lint`. See the library docs for the rule set.
//!
//! ```text
//! cargo run -p eadrl-lint -- [--json] [--design DESIGN.md] [--list-rules] [paths…]
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.

use eadrl_lint::{default_rules, lint_paths, report_to_json, LintContext, ObsSchema};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut design = PathBuf::from("DESIGN.md");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--design" => match args.next() {
                Some(p) => design = PathBuf::from(p),
                None => {
                    eprintln!("eadrl-lint: --design needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: eadrl-lint [--json] [--design DESIGN.md] [--list-rules] [paths…]\n\
                     default paths: crates src examples"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("eadrl-lint: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if list_rules {
        for rule in default_rules() {
            println!("{:<18} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }
    if paths.is_empty() {
        paths = vec![
            PathBuf::from("crates"),
            PathBuf::from("src"),
            PathBuf::from("examples"),
        ];
        paths.retain(|p| p.exists());
    }

    let schema = match std::fs::read_to_string(&design) {
        Ok(md) => ObsSchema::from_design_md(&md),
        Err(_) => None,
    };
    if schema.is_none() {
        eprintln!(
            "eadrl-lint: warning: no telemetry schema table found at {} — obs-event-schema rule disabled",
            design.display()
        );
    }
    let ctx = LintContext { schema };

    let report = match lint_paths(&paths, &ctx) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("eadrl-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report_to_json(&report));
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        println!(
            "eadrl-lint: {} finding(s), {} suppressed, {} file(s) checked",
            report.findings.len(),
            report.suppressed.len(),
            report.files
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
