//! Folded-stack flamegraph export.
//!
//! One line per span-tree node with nonzero self time, in the
//! `path;path;leaf count` format consumed by Brendan Gregg's
//! `flamegraph.pl` and by speedscope's "folded" importer. Counts are
//! self-time microseconds, so frame widths are directly attributed
//! time — totals are implied by summing descendants, exactly as
//! flamegraph tooling expects.

use crate::tree::SpanTree;

/// Renders the tree as folded stacks (deterministic DFS order).
///
/// Nodes with zero self time are skipped: their time is entirely in
/// their children, and flamegraph tools reconstruct such frames from
/// the children's stack prefixes anyway. `open` nodes (no close event)
/// never have self time and are skipped with them.
pub fn folded(tree: &SpanTree) -> String {
    let mut out = String::new();
    for node in &tree.nodes {
        if node.self_us == 0 {
            continue;
        }
        out.push_str(&node.path.replace('/', ";"));
        out.push(' ');
        out.push_str(&node.self_us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use crate::tree::TreeOptions;
    use eadrl_obs::{Event, EventKind, Level};

    fn span(path: &str, us: u64) -> String {
        Event::new(path, EventKind::Span, Level::Info)
            .field("duration_us", us)
            .to_json_line()
    }

    #[test]
    fn folds_self_time_and_skips_pass_through_frames() {
        let text = [
            span("fit/train.step", 40),
            span("fit/train.step", 20),
            span("fit/eval.pass", 60),
            span("fit", 100),
        ]
        .join("\n");
        let tree = SpanTree::build(&Trace::from_jsonl(&text), &TreeOptions::default());
        let folded = folded(&tree);
        // fit has 100 - 60 - 60 = -20 → clamped 0 → skipped; leaves keep
        // their own time with '/' → ';'.
        assert_eq!(folded, "fit;eval.pass 60\nfit;train.step 60\n");
    }
}
