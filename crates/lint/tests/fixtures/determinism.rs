// Fixture: determinism. Linted twice — with the pretend path
// `crates/models/src/fixture.rs` (all tags fire) and with
// `crates/obs/src/fixture.rs` (clock reads and hash collections are both
// allowed there: zero findings).

use std::collections::HashMap; //~ determinism
use std::time::Instant;

pub fn clock_read() -> f64 {
    let t = Instant::now(); //~ determinism
    t.elapsed().as_secs_f64()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now() //~ determinism
}

pub fn hash_table() -> usize {
    let m: HashMap<u32, u32> = HashMap::new(); //~ determinism //~ determinism
    m.len()
}

pub fn negatives(deadline: Instant) -> bool {
    // A type position (no `::now` call) is fine.
    deadline.elapsed().as_secs() > 1
}

pub fn suppressed() -> f64 {
    // eadrl-lint: allow(determinism): wall-clock here is the measurement itself
    Instant::now().elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn hash_sets_in_tests_are_fine() {
        let s: HashSet<u32> = HashSet::new();
        assert!(s.is_empty());
    }
}
