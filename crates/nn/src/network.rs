//! The parameter-visitor trait that connects networks to optimizers.

use eadrl_linalg::Matrix;

/// Anything with trainable parameters and gradient buffers.
///
/// Optimizers never see layer structure; they only visit `(params, grads)`
/// slice pairs in a fixed, topology-determined order. The order must be
/// stable across calls — [`crate::Adam`] allocates its moment buffers
/// positionally on first use.
pub trait Network {
    /// Visits every parameter buffer together with its gradient buffer.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64]));

    /// Clears all gradient buffers.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_p, g| {
            for x in g.iter_mut() {
                *x = 0.0;
            }
        });
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _g| n += p.len());
        n
    }

    /// Global L2 norm of the current gradients.
    fn grad_norm(&mut self) -> f64 {
        let mut s = 0.0;
        self.visit_params(&mut |_p, g| {
            s += g.iter().map(|x| x * x).sum::<f64>();
        });
        s.sqrt()
    }

    /// Scales gradients so their global norm does not exceed `max_norm`.
    fn clip_grad_norm(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            self.visit_params(&mut |_p, g| {
                for x in g.iter_mut() {
                    *x *= scale;
                }
            });
        }
    }

    /// Flattens all parameters into one vector (used for target-network
    /// syncing and serialization).
    fn flat_params(&mut self) -> Vec<f64> {
        let mut out = Vec::new();
        self.flat_params_into(&mut out);
        out
    }

    /// Flattens all parameters into a caller-owned buffer, reusing its
    /// allocation — the allocation-free form of [`Self::flat_params`] for
    /// per-update hot paths (Polyak target syncs, telemetry snapshots).
    fn flat_params_into(&mut self, out: &mut Vec<f64>) {
        out.clear();
        self.visit_params(&mut |p, _g| out.extend_from_slice(p));
    }

    /// Loads parameters from a flat vector produced by [`Self::flat_params`]
    /// on an identically-shaped network.
    ///
    /// # Panics
    /// Panics when the vector length does not match the parameter count.
    fn load_flat_params(&mut self, flat: &[f64]) {
        let mut offset = 0;
        self.visit_params(&mut |p, _g| {
            p.copy_from_slice(&flat[offset..offset + p.len()]);
            offset += p.len();
        });
        assert_eq!(offset, flat.len(), "flat parameter length mismatch");
    }

    /// Polyak soft update: `self = tau * source + (1 - tau) * self`.
    ///
    /// This is DDPG's target-network update; `source` must have identical
    /// topology.
    fn soft_update_from(&mut self, source: &[f64], tau: f64) {
        let mut offset = 0;
        self.visit_params(&mut |p, _g| {
            for x in p.iter_mut() {
                *x = tau * source[offset] + (1.0 - tau) * *x;
                offset += 1;
            }
        });
        assert_eq!(offset, source.len(), "soft update length mismatch");
    }
}

/// A [`Network`] that can also process a whole batch of samples per pass.
///
/// The contract is strict: for any batch assembled from rows `x_0..x_n`,
/// `forward_batch` must produce exactly the rows `forward(x_0)..forward(x_n)`
/// **bitwise**, and `backward_batch` must leave the gradient buffers bitwise
/// equal to running the per-sample `forward`/`backward` pairs in row order.
/// The property tests in `crates/nn/tests/props.rs` enforce this for every
/// implementor.
pub trait BatchNetwork: Network {
    /// Forward pass over input rows (`batch x in_dim`), caching the batch
    /// for [`Self::backward_batch`]; returns output rows.
    fn forward_batch(&mut self, input: &Matrix) -> &Matrix;

    /// Backward pass over output-gradient rows matching the last
    /// [`Self::forward_batch`]; accumulates parameter gradients in sample
    /// order and returns input-gradient rows.
    fn backward_batch(&mut self, grad_output: &Matrix) -> &Matrix;
}
