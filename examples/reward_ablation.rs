//! Reward ablation (the paper's Q2 / Figure 2): train the same DDPG agent
//! with the rank-based reward of Eq. 3 and with the naive `1 - NRMSE`
//! reward, and watch only the former converge.
//!
//! ```text
//! cargo run --release --example reward_ablation
//! ```

use eadrl::core::{EnsembleEnv, RewardKind};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::{quick_pool, rolling_forecast};
use eadrl::rl::{DdpgAgent, DdpgConfig};

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| BARS[(((v - lo) / range) * 7.0).round() as usize])
        .collect()
}

fn main() {
    // Prepare a validation segment of base-model predictions.
    let series = generate(DatasetId::SolarRadiation, 480, 42);
    let (train, _) = series.split(0.75);
    let fit_len = (train.len() as f64 * 0.75).round() as usize;
    let (fit_part, warm_part) = train.split_at(fit_len);
    let mut pool = quick_pool(5, 24, 42);
    pool.retain_mut(|m| m.fit(fit_part).is_ok());
    let per_model: Vec<Vec<f64>> = pool
        .iter()
        .map(|m| rolling_forecast(m.as_ref(), fit_part, warm_part))
        .collect();
    let preds: Vec<Vec<f64>> = (0..warm_part.len())
        .map(|t| per_model.iter().map(|p| p[t]).collect())
        .collect();

    println!(
        "training DDPG on {} ({} models, {} validation steps)\n",
        series.name(),
        pool.len(),
        warm_part.len()
    );

    for (label, reward) in [
        (
            "rank reward (Eq. 3)      ",
            RewardKind::Rank { normalize: true },
        ),
        ("1 - NRMSE reward (Fig 2a)", RewardKind::OneMinusNrmse),
    ] {
        let mut env = EnsembleEnv::new(preds.clone(), warm_part.to_vec(), 10, reward, 100);
        let mut agent = DdpgAgent::new(
            10,
            pool.len(),
            DdpgConfig {
                gamma: 0.9,
                actor_lr: 0.01,
                critic_lr: 0.01,
                hidden: vec![32, 32],
                squash: eadrl::rl::ActionSquash::BoundedSoftmax { scale: 6.0 },
                seed: 42,
                ..Default::default()
            },
        );
        let stats = agent.train(&mut env, 60);
        let curve: Vec<f64> = stats.iter().map(|s| s.avg_reward).collect();
        let early = curve[..10].iter().sum::<f64>() / 10.0;
        let late = curve[50..].iter().sum::<f64>() / 10.0;
        println!("{label}  {}", sparkline(&curve));
        println!(
            "{label}  early avg {early:.3} -> late avg {late:.3} ({})\n",
            if late > early + 0.02 {
                "improves - converging"
            } else {
                "flat - not converging"
            }
        );
    }
    println!(
        "The paper's Q2 answer: the reward choice is critical — error-\n\
         magnitude rewards track the series' own time-varying scale, while\n\
         the rank reward is stationary and lets the actor-critic converge."
    );
}
