//! `obs_report` — the profiler CLI over `eadrl-obs` JSONL traces.
//!
//! ```text
//! obs_report tree    TRACE [--json] [--raw] [--top N]
//! obs_report flame   TRACE [--raw] [--out FILE]
//! obs_report workers TRACE [--json]
//! obs_report diff    BASE NEW [--threshold X] [--min-us N] [--json] [--raw]
//! obs_report check   TRACE [--schema DESIGN.md] [--allow-truncated]
//! ```
//!
//! By default the span tree collapses `par.worker` chunk spans so the
//! report shape is independent of `EADRL_PAR_THREADS` (see
//! [`eadrl_prof::TreeOptions::shape_stable`]); `--raw` keeps them.
//!
//! Exit codes: `0` clean, `1` gate failure (`diff` found a regression,
//! `check` found a problem), `2` usage or I/O error.

use eadrl_obs::{ObsSchema, Value};
use eadrl_prof::{
    flame, report, DiffOptions, DiffReport, SpanTree, Trace, TreeOptions, Utilization,
};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: obs_report <tree|flame|workers|diff|check> ... (see --help)";

const HELP: &str = "obs_report - profile eadrl-obs JSONL traces

subcommands:
  tree    TRACE [--json] [--raw] [--top N]    span-tree attribution report
  flame   TRACE [--raw] [--out FILE]          folded stacks for flamegraph tools
  workers TRACE [--json]                      per-worker utilization
  diff    BASE NEW [--threshold X] [--min-us N] [--json] [--raw]
                                              latency diff; exit 1 on regression
  check   TRACE [--schema DESIGN.md] [--allow-truncated]
                                              trace health gate; exit 1 on problems

--raw keeps per-chunk par.worker spans (thread-count-dependent shape).";

/// Errors carry the exit code they deserve: 1 = gate, 2 = usage/I/O.
struct Failure {
    code: u8,
    message: String,
}

fn usage_err(message: impl Into<String>) -> Failure {
    Failure {
        code: 2,
        message: message.into(),
    }
}

fn gate_err(message: impl Into<String>) -> Failure {
    Failure {
        code: 1,
        message: message.into(),
    }
}

fn load(path: &str) -> Result<Trace, Failure> {
    Trace::load(Path::new(path)).map_err(usage_err)
}

fn tree_options(raw: bool) -> TreeOptions {
    if raw {
        TreeOptions::default()
    } else {
        TreeOptions::shape_stable()
    }
}

struct Flags {
    positional: Vec<String>,
    json: bool,
    raw: bool,
    top: usize,
    out: Option<String>,
    threshold: f64,
    min_us: u64,
    schema: Option<String>,
    allow_truncated: bool,
}

fn parse_flags(args: impl Iterator<Item = String>) -> Result<Flags, Failure> {
    let defaults = DiffOptions::default();
    let mut flags = Flags {
        positional: Vec::new(),
        json: false,
        raw: false,
        top: 10,
        out: None,
        threshold: defaults.threshold,
        min_us: defaults.min_us,
        schema: None,
        allow_truncated: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let value_of = |flag: &str, args: &mut dyn Iterator<Item = String>| {
            args.next()
                .ok_or_else(|| usage_err(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--json" => flags.json = true,
            "--raw" => flags.raw = true,
            "--allow-truncated" => flags.allow_truncated = true,
            "--top" => {
                let v = value_of("--top", &mut args)?;
                flags.top = v
                    .parse()
                    .map_err(|_| usage_err(format!("--top: '{v}' is not a count")))?;
            }
            "--out" => flags.out = Some(value_of("--out", &mut args)?),
            "--threshold" => {
                let v = value_of("--threshold", &mut args)?;
                flags.threshold = v
                    .parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && *t > 0.0)
                    .ok_or_else(|| {
                        usage_err(format!("--threshold: '{v}' is not a positive ratio"))
                    })?;
            }
            "--min-us" => {
                let v = value_of("--min-us", &mut args)?;
                flags.min_us = v
                    .parse()
                    .map_err(|_| usage_err(format!("--min-us: '{v}' is not a count")))?;
            }
            "--schema" => flags.schema = Some(value_of("--schema", &mut args)?),
            other if other.starts_with("--") => {
                return Err(usage_err(format!("unknown flag '{other}'")));
            }
            _ => flags.positional.push(arg),
        }
    }
    Ok(flags)
}

fn one_trace(flags: &Flags) -> Result<String, Failure> {
    match flags.positional.as_slice() {
        [path] => Ok(path.clone()),
        _ => Err(usage_err("expected exactly one TRACE argument")),
    }
}

fn cmd_tree(flags: &Flags) -> Result<(), Failure> {
    let trace = load(&one_trace(flags)?)?;
    let tree = SpanTree::build(&trace, &tree_options(flags.raw));
    if flags.json {
        println!("{}", report::tree_json(&tree, &trace).to_json());
    } else {
        print!("{}", report::tree_text(&tree, &trace));
        println!();
        print!("{}", report::hotspots_text(&tree, flags.top));
    }
    eadrl_obs::event(
        "prof.report",
        eadrl_obs::Level::Info,
        &[("spans", Value::U64(tree.nodes.len() as u64))],
    );
    Ok(())
}

fn cmd_flame(flags: &Flags) -> Result<(), Failure> {
    let trace = load(&one_trace(flags)?)?;
    let tree = SpanTree::build(&trace, &tree_options(flags.raw));
    let folded = flame::folded(&tree);
    match &flags.out {
        Some(path) => std::fs::write(path, &folded)
            .map_err(|e| usage_err(format!("cannot write {path}: {e}")))?,
        None => print!("{folded}"),
    }
    Ok(())
}

fn cmd_workers(flags: &Flags) -> Result<(), Failure> {
    let trace = load(&one_trace(flags)?)?;
    let util = Utilization::analyze(&trace);
    if flags.json {
        println!("{}", report::workers_json(&util).to_json());
    } else {
        print!("{}", report::workers_text(&util));
    }
    Ok(())
}

fn cmd_diff(flags: &Flags) -> Result<(), Failure> {
    let [base_path, new_path] = flags.positional.as_slice() else {
        return Err(usage_err("expected BASE and NEW trace arguments"));
    };
    let options = tree_options(flags.raw);
    let base = SpanTree::build(&load(base_path)?, &options);
    let new = SpanTree::build(&load(new_path)?, &options);
    let diff_options = DiffOptions {
        threshold: flags.threshold,
        min_us: flags.min_us,
    };
    let result = DiffReport::compare(&base, &new, &diff_options);
    if flags.json {
        println!("{}", report::diff_json(&result).to_json());
    } else {
        print!("{}", report::diff_text(&result));
    }
    eadrl_obs::event(
        "prof.diff",
        eadrl_obs::Level::Info,
        &[("regressions", Value::U64(result.regressions().len() as u64))],
    );
    if result.has_regressions() {
        return Err(gate_err(format!(
            "{}: {} path(s) regressed past {:.2}x vs {}",
            new_path,
            result.regressions().len(),
            flags.threshold,
            base_path,
        )));
    }
    Ok(())
}

fn cmd_check(flags: &Flags) -> Result<(), Failure> {
    let path = one_trace(flags)?;
    let trace = load(&path)?;
    if trace.events.is_empty() {
        return Err(gate_err(format!("{path}: trace contains no events")));
    }
    if !flags.allow_truncated {
        if let Some((lineno, err)) = trace.bad_lines.first() {
            return Err(gate_err(format!(
                "{path}:{lineno}: damaged line ({err}); {} total",
                trace.bad_lines.len()
            )));
        }
        if let Some(dropped) = trace.ring_dropped {
            return Err(gate_err(format!(
                "{path}: ring buffer dropped {dropped} event(s); trace is incomplete"
            )));
        }
    }
    if let Some(md_path) = &flags.schema {
        let md = std::fs::read_to_string(md_path)
            .map_err(|e| usage_err(format!("cannot read {md_path}: {e}")))?;
        let schema = ObsSchema::from_design_md(&md).ok_or_else(|| {
            usage_err(format!(
                "{md_path}: no 'Telemetry event schema' table found"
            ))
        })?;
        for event in &trace.events {
            if event.kind != eadrl_obs::EventKind::Metric && !schema.matches_path(&event.name) {
                return Err(gate_err(format!(
                    "{path}: event name '{}' is not in the schema table",
                    event.name
                )));
            }
        }
    }
    let tree = SpanTree::build(&trace, &TreeOptions::shape_stable());
    println!(
        "{path}: {} events, {} span paths OK",
        trace.events.len(),
        tree.nodes.len()
    );
    Ok(())
}

fn run() -> Result<(), Failure> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(|| usage_err(USAGE))?;
    if command == "--help" || command == "-h" || command == "help" {
        println!("{HELP}");
        return Ok(());
    }
    let flags = parse_flags(args)?;
    match command.as_str() {
        "tree" => cmd_tree(&flags),
        "flame" => cmd_flame(&flags),
        "workers" => cmd_workers(&flags),
        "diff" => cmd_diff(&flags),
        "check" => cmd_check(&flags),
        other => Err(usage_err(format!("unknown subcommand '{other}'; {USAGE}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("obs_report: {}", failure.message);
            ExitCode::from(failure.code)
        }
    }
}
