//! `obs-event-schema`: the telemetry contract in `DESIGN.md` is
//! machine-checked.
//!
//! PR 1 introduced a documented schema for every `eadrl_obs` event and
//! span name ("Telemetry event schema" table in `DESIGN.md`). This rule
//! extracts the string literal passed to `eadrl_obs::{event, event_with,
//! warn, span, span_at}` call-sites and validates the dotted name
//! against that table, so adding an event without documenting it — or
//! typo-ing `eadrl.onlien.drift` — fails CI instead of silently
//! producing a trace `obs_validate` can't account for.

use crate::lexer::TokenKind;
use crate::rules::{Finding, LintContext, Rule};
use crate::source::SourceFile;

/// Functions in `eadrl_obs` whose first string-literal argument is an
/// event/span name.
const EMITTERS: &[&str] = &["event", "event_with", "warn", "span", "span_at"];

/// The event-name schema: one pattern per documented name; `*` matches
/// exactly one dot-separated segment (`eadrl.*.skipped`).
#[derive(Debug, Clone, Default)]
pub struct ObsSchema {
    patterns: Vec<Vec<String>>,
}

impl ObsSchema {
    /// Parses the "Telemetry event schema" markdown table out of
    /// `DESIGN.md` text. Names come from the first column; comma-
    /// separated cells list several names for one row.
    pub fn from_design_md(md: &str) -> Option<ObsSchema> {
        let mut patterns = Vec::new();
        let mut in_section = false;
        for line in md.lines() {
            if line.starts_with('#') {
                in_section = line.to_lowercase().contains("telemetry event schema");
                continue;
            }
            if !in_section || !line.trim_start().starts_with('|') {
                continue;
            }
            let first_cell = line.trim_start().trim_start_matches('|');
            let Some(cell) = first_cell.split('|').next() else {
                continue;
            };
            for raw in cell.split(',') {
                let name = raw.trim().trim_matches('`').trim();
                // Keep only dotted identifiers (skips the header row and
                // separator rows like `|---|`).
                if !name.is_empty()
                    && name.contains('.')
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._*".contains(c))
                {
                    patterns.push(name.split('.').map(str::to_string).collect());
                }
            }
        }
        if patterns.is_empty() {
            None
        } else {
            Some(ObsSchema { patterns })
        }
    }

    /// A schema from explicit patterns (for tests).
    pub fn from_patterns(names: &[&str]) -> ObsSchema {
        ObsSchema {
            patterns: names
                .iter()
                .map(|n| n.split('.').map(str::to_string).collect())
                .collect(),
        }
    }

    /// True when `name` matches a documented pattern. `*` matches one or
    /// more consecutive segments, so `eadrl.*.skipped` covers both
    /// `eadrl.warm_up.skipped` and `eadrl.online.refresh.skipped`.
    pub fn matches(&self, name: &str) -> bool {
        fn seg_match(pat: &[String], segs: &[&str]) -> bool {
            match (pat.first(), segs.first()) {
                (None, None) => true,
                (Some(p), Some(_)) if p == "*" => {
                    (1..=segs.len()).any(|k| seg_match(&pat[1..], &segs[k..]))
                }
                (Some(p), Some(s)) if p == s => seg_match(&pat[1..], &segs[1..]),
                _ => false,
            }
        }
        let segs: Vec<&str> = name.split('.').collect();
        self.patterns.iter().any(|pat| seg_match(pat, &segs))
    }

    /// Number of documented name patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no patterns were parsed.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// See module docs.
pub struct ObsEventSchema;

impl Rule for ObsEventSchema {
    fn name(&self) -> &'static str {
        "obs-event-schema"
    }

    fn description(&self) -> &'static str {
        "event names passed to eadrl_obs emitters must appear in DESIGN.md's telemetry schema table"
    }

    fn check(&self, file: &SourceFile, ctx: &LintContext, out: &mut Vec<Finding>) {
        // The obs crate itself builds arbitrary names (tests, validator);
        // the contract binds the *emitting* crates.
        if file.in_any(&["crates/obs/", "crates/lint/"]) {
            return;
        }
        let Some(schema) = &ctx.schema else {
            return;
        };
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || t.text != "eadrl_obs" || file.in_test_code(t.line) {
                continue;
            }
            let coloncolon = matches!(
                toks.get(i + 1),
                Some(n) if n.kind == TokenKind::Op && n.text == "::"
            );
            let Some(func) = toks.get(i + 2) else {
                continue;
            };
            if !coloncolon || func.kind != TokenKind::Ident {
                continue;
            }
            if !EMITTERS.contains(&func.text.as_str()) {
                continue;
            }
            if !matches!(
                toks.get(i + 3),
                Some(p) if p.kind == TokenKind::Punct && p.text == "("
            ) {
                continue;
            }
            // First string literal at argument depth 1 is the name (for
            // span_at it follows the Level argument).
            let mut depth = 1usize;
            let mut j = i + 4;
            let mut found = None;
            while let Some(tok) = toks.get(j) {
                match (tok.kind, tok.text.as_str()) {
                    (TokenKind::Punct, "(" | "[" | "{") => depth += 1,
                    (TokenKind::Punct, ")" | "]" | "}") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    (TokenKind::Str, _) if depth == 1 => {
                        found = Some(tok);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(name_tok) = found {
                if !schema.matches(&name_tok.text) {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: name_tok.line,
                        message: format!(
                            "event name \"{}\" is not in DESIGN.md's telemetry schema table — document it there or fix the typo",
                            name_tok.text
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_schema_from_markdown_table() {
        let md = "\
# Design

### Telemetry event schema

| Name | Kind |
|---|---|
| `a.b`, `c.d.e` | event |
| `x.*.skipped` | event |

### Next section

| `not.me` | event |
";
        let s = ObsSchema::from_design_md(md).expect("schema parses");
        assert_eq!(s.len(), 3);
        assert!(s.matches("a.b"));
        assert!(s.matches("c.d.e"));
        assert!(s.matches("x.anything.skipped"));
        assert!(s.matches("x.two.deep.skipped"));
        assert!(!s.matches("not.me"));
        assert!(!s.matches("a.b.c"));
    }
}
