//! Property-based tests for the dataset generators.

use eadrl_datasets::{generate, DatasetId, SeriesBuilder};
use eadrl_ptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_dataset_is_finite_and_sized(
        seed in 0u64..10_000,
        len in 10usize..400,
        idx in 0usize..20,
    ) {
        let id = DatasetId::all()[idx];
        let s = generate(id, len, seed);
        prop_assert_eq!(s.len(), len);
        prop_assert!(s.values().iter().all(|v| v.is_finite()), "{:?}", id);
    }

    #[test]
    fn generation_is_a_pure_function_of_inputs(
        seed in 0u64..10_000,
        idx in 0usize..20,
    ) {
        let id = DatasetId::all()[idx];
        let a = generate(id, 120, seed);
        let b = generate(id, 120, seed);
        prop_assert_eq!(a.values(), b.values());
    }

    #[test]
    fn builder_components_compose_additively(
        seed in 0u64..1000,
        base in -100.0f64..100.0,
        slope in -1.0f64..1.0,
    ) {
        // With no noise, base + trend is exactly affine.
        let s = SeriesBuilder::new(seed, base).trend(slope).build(50);
        for (t, v) in s.iter().enumerate() {
            prop_assert!((v - (base + slope * t as f64)).abs() < 1e-9);
        }
    }

    #[test]
    fn clamp_min_is_respected_for_any_noise(
        seed in 0u64..1000,
        sigma in 0.1f64..50.0,
        floor in -10.0f64..10.0,
    ) {
        let s = SeriesBuilder::new(seed, 0.0)
            .arma_noise(0.3, 0.2, sigma)
            .clamp_min(floor)
            .build(200);
        prop_assert!(s.iter().all(|&v| v >= floor));
    }

    #[test]
    fn level_shift_moves_only_the_tail(
        seed in 0u64..1000,
        magnitude in -100.0f64..100.0,
        at in 0.1f64..0.9,
    ) {
        let clean = SeriesBuilder::new(seed, 5.0).build(100);
        let shifted = SeriesBuilder::new(seed, 5.0)
            .level_shift(at, magnitude)
            .build(100);
        let cut = (at * 100.0) as usize;
        for t in 0..cut {
            prop_assert_eq!(clean[t], shifted[t]);
        }
        for t in cut..100 {
            prop_assert!((shifted[t] - clean[t] - magnitude).abs() < 1e-9);
        }
    }
}
