//! Benchmarks for the offline training phase (Q3's wall-clock comparison):
//! one DDPG update and one full episode under the two replay-sampling
//! strategies of the paper.

use eadrl_bench::harness::Harness;
use eadrl_bench::{build_pool, fit_pool, prediction_matrix, Scale, OMEGA};
use eadrl_core::experiment::sanitize_predictions;
use eadrl_core::{EnsembleEnv, RewardKind};
use eadrl_datasets::{generate, DatasetId};
use eadrl_rl::{ActionSquash, DdpgAgent, DdpgConfig, Environment, SamplingStrategy, Transition};
use std::hint::black_box;

fn prepared_env(reward: RewardKind) -> (Vec<Vec<f64>>, Vec<f64>, EnsembleEnv) {
    let scale = Scale::full();
    let series = generate(DatasetId::SolarRadiation, scale.series_len, scale.seed);
    let cut = (series.len() as f64 * 0.75).round() as usize;
    let train = &series.values()[..cut];
    let fit_len = (train.len() as f64 * 0.75).round() as usize;
    let (fit_part, warm_part) = train.split_at(fit_len);
    let pool = fit_pool(build_pool(scale, 24), fit_part);
    let mut preds = prediction_matrix(&pool, fit_part, warm_part);
    sanitize_predictions(&mut preds, fit_part);
    let env = EnsembleEnv::new(preds.clone(), warm_part.to_vec(), OMEGA, reward, 100);
    (preds, warm_part.to_vec(), env)
}

fn agent_for(env: &EnsembleEnv, sampling: SamplingStrategy) -> DdpgAgent {
    let config = DdpgConfig {
        sampling,
        hidden: vec![32, 32],
        squash: ActionSquash::BoundedSoftmax { scale: 6.0 },
        seed: 42,
        ..Default::default()
    };
    DdpgAgent::new(env.state_dim(), env.action_dim(), config)
}

fn bench_training(c: &mut Harness) {
    let (_preds, _actuals, mut env) = prepared_env(RewardKind::Rank { normalize: true });

    // Per-update cost with a filled buffer, per sampling strategy.
    let mut group = c.benchmark_group("ddpg_update");
    for (label, sampling) in [
        ("diversity_sampling", SamplingStrategy::Diversity),
        ("uniform_sampling", SamplingStrategy::Uniform),
    ] {
        group.bench_function(label, |b| {
            let mut agent = agent_for(&env, sampling);
            // Fill the buffer with plausible transitions.
            let state = env.reset();
            let mut s = state;
            for _ in 0..256 {
                let a = agent.act_exploratory(&s);
                let (ns, r, done) = env.step(&a);
                agent.observe(Transition {
                    state: s.clone(),
                    action: a,
                    reward: r,
                    next_state: ns.clone(),
                    done,
                });
                s = if done { env.reset() } else { ns };
            }
            b.iter(|| {
                agent.update();
                black_box(agent.updates())
            });
        });
    }
    group.finish();

    // Full-episode cost (environment replay + updates each step).
    let mut group = c.benchmark_group("ddpg_episode");
    group.sample_size(10);
    for (label, sampling) in [
        ("diversity_sampling", SamplingStrategy::Diversity),
        ("uniform_sampling", SamplingStrategy::Uniform),
    ] {
        group.bench_function(label, |b| {
            let template = agent_for(&env, sampling);
            let (state_dim, action_dim) = (env.state_dim(), env.action_dim());
            let config = template.config().clone();
            b.iter_batched(
                || DdpgAgent::new(state_dim, action_dim, config.clone()),
                |mut agent| {
                    let stats = agent.run_episode(&mut env, true);
                    black_box(stats.total_reward)
                },
            )
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    bench_training(&mut h);
}
