//! Finite-difference gradient checking for [`Network`] implementations.
//!
//! Manual-backprop code has exactly one failure mode that silently ruins
//! everything downstream: a wrong gradient. This module packages the
//! central-difference check used throughout this crate's tests as a public
//! utility, so anyone adding a custom layer can verify it the same way.

use crate::network::Network;

/// Outcome of a gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Parameters checked.
    pub checked: usize,
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_error: f64,
    /// Index (into the flat parameter vector) of the worst parameter.
    pub worst_index: usize,
}

impl GradCheckReport {
    /// True when every checked gradient matched within `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_error <= tol
    }
}

/// Checks the analytic gradients currently stored in `network` against
/// central finite differences of `loss`.
///
/// The caller is responsible for having run the forward + backward pass
/// that populated the gradients (and for `loss` recomputing the *same*
/// scalar loss from scratch — typically a closure over the same inputs
/// and targets). `indices` selects which flat-parameter entries to probe;
/// probing all of them is O(2·|θ|) loss evaluations, so tests usually
/// sample a handful.
///
/// # Panics
/// Panics when an index is out of range.
pub fn check_gradients<N: Network>(
    network: &mut N,
    loss: impl Fn(&mut N) -> f64,
    indices: &[usize],
    step: f64,
) -> GradCheckReport {
    let flat = network.flat_params();
    let mut grads = Vec::with_capacity(flat.len());
    network.visit_params(&mut |_p, g| grads.extend_from_slice(g));
    assert_eq!(flat.len(), grads.len(), "params/grads disagree");

    let mut max_abs_error: f64 = 0.0;
    let mut worst_index = 0;
    for &idx in indices {
        assert!(idx < flat.len(), "gradcheck index {idx} out of range");
        let mut up = flat.clone();
        up[idx] += step;
        network.load_flat_params(&up);
        let lu = loss(network);
        let mut down = flat.clone();
        down[idx] -= step;
        network.load_flat_params(&down);
        let ld = loss(network);
        let numeric = (lu - ld) / (2.0 * step);
        let err = (numeric - grads[idx]).abs();
        if err > max_abs_error {
            max_abs_error = err;
            worst_index = idx;
        }
    }
    network.load_flat_params(&flat);
    GradCheckReport {
        checked: indices.len(),
        max_abs_error,
        worst_index,
    }
}

/// Runs the forward/backward pair through the **batched** path
/// ([`crate::network::BatchNetwork::forward_batch`] /
/// [`crate::network::BatchNetwork::backward_batch`]) to
/// populate the gradients, then checks them against central finite
/// differences of `loss` exactly like [`check_gradients`].
///
/// `loss` must recompute, from scratch, the same scalar the batch
/// implicitly optimizes — i.e. the loss whose per-row gradients are
/// `grad_output` (typically a sum of per-row losses over `input`). Since
/// the batched path accumulates gradients bitwise-identically to per-sample
/// passes in row order, this check passing for one path proves it for both;
/// tests still run both paths to enforce that equivalence end to end.
///
/// # Panics
/// Panics when an index is out of range.
pub fn check_gradients_batched<N: crate::network::BatchNetwork>(
    network: &mut N,
    input: &eadrl_linalg::Matrix,
    grad_output: &eadrl_linalg::Matrix,
    loss: impl Fn(&mut N) -> f64,
    indices: &[usize],
    step: f64,
) -> GradCheckReport {
    network.zero_grad();
    network.forward_batch(input);
    network.backward_batch(grad_output);
    check_gradients(network, loss, indices, step)
}

/// Convenience: evenly spaced probe indices covering a parameter vector.
pub fn probe_indices(param_count: usize, probes: usize) -> Vec<usize> {
    if param_count == 0 || probes == 0 {
        return Vec::new();
    }
    let probes = probes.min(param_count);
    (0..probes)
        .map(|i| i * (param_count - 1) / probes.max(1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss::{mse_loss, mse_loss_grad};
    use crate::mlp::Mlp;
    use eadrl_rng::DetRng;

    #[test]
    fn mlp_gradients_pass_the_check() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&mut rng, &[3, 5, 2], Activation::Tanh, Activation::Identity);
        let x = [0.3, -0.7, 0.5];
        let target = [1.0, -0.5];
        let y = mlp.forward(&x);
        let g = mse_loss_grad(&y, &target);
        mlp.zero_grad();
        mlp.forward(&x);
        mlp.backward(&g);

        let n = mlp.param_count();
        let indices = probe_indices(n, 12);
        let report = check_gradients(
            &mut mlp,
            |net| mse_loss(&net.forward_inference(&x), &target),
            &indices,
            1e-6,
        );
        assert!(report.passes(1e-5), "{report:?}");
        assert_eq!(report.checked, 12);
    }

    #[test]
    fn corrupted_gradients_fail_the_check() {
        let mut rng = DetRng::seed_from_u64(4);
        let mut mlp = Mlp::new(&mut rng, &[2, 3, 1], Activation::Tanh, Activation::Identity);
        let x = [0.5, -0.5];
        let target = [2.0];
        let y = mlp.forward(&x);
        let g = mse_loss_grad(&y, &target);
        mlp.backward(&g);
        // Sabotage: add garbage to every gradient.
        mlp.visit_params(&mut |_p, grads| {
            for v in grads.iter_mut() {
                *v += 1.0;
            }
        });
        let n = mlp.param_count();
        let report = check_gradients(
            &mut mlp,
            |net| mse_loss(&net.forward_inference(&x), &target),
            &probe_indices(n, 6),
            1e-6,
        );
        assert!(!report.passes(1e-5));
        assert!(report.max_abs_error > 0.5);
    }

    #[test]
    fn per_sample_and_batched_checks_agree_bitwise() {
        use eadrl_linalg::Matrix;

        let mut rng = DetRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&mut rng, &[3, 5, 2], Activation::Tanh, Activation::Identity);
        let xs = [[0.3, -0.7, 0.5], [0.9, 0.1, -0.2]];
        let targets = [[1.0, -0.5], [0.0, 0.25]];
        let total_loss = |net: &mut Mlp| -> f64 {
            xs.iter()
                .zip(targets.iter())
                .map(|(x, t)| mse_loss(&net.forward_inference(x), t))
                .sum()
        };

        // Per-sample path: forward/backward each row in order.
        mlp.zero_grad();
        let mut grad_rows = Vec::new();
        for (x, t) in xs.iter().zip(targets.iter()) {
            let y = mlp.forward(x);
            let g = mse_loss_grad(&y, t);
            mlp.backward(&g);
            grad_rows.push(g);
        }
        let indices = probe_indices(mlp.param_count(), 12);
        let per_sample = check_gradients(&mut mlp, total_loss, &indices, 1e-6);
        assert!(per_sample.passes(1e-5), "{per_sample:?}");

        // Batched path over the same rows, same loss, same probes.
        let input = Matrix::from_rows(&xs.iter().map(|x| x.to_vec()).collect::<Vec<_>>()).unwrap();
        let gout = Matrix::from_rows(&grad_rows).unwrap();
        let batched = check_gradients_batched(&mut mlp, &input, &gout, total_loss, &indices, 1e-6);
        assert!(batched.passes(1e-5), "{batched:?}");
        assert_eq!(
            per_sample, batched,
            "batched gradcheck must reproduce the per-sample report bitwise"
        );
    }

    #[test]
    fn lstm_fused_batched_backward_passes_the_check() {
        use crate::lstm::{Lstm, RecurrentWorkspace};

        let mut rng = DetRng::seed_from_u64(11);
        let mut lstm = Lstm::new(&mut rng, 1, 4);
        let windows: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..5).map(|t| ((i * 5 + t) as f64 * 0.37).sin()).collect())
            .collect();

        // Populate the gradients through the fused batched BPTT path,
        // with upstream gradient dL/dh = h, i.e. L = Σ_s ½‖h_last‖².
        let mut ws = RecurrentWorkspace::new();
        ws.stage(windows.len(), 5, 1, 4);
        for (s, w) in windows.iter().enumerate() {
            for (t, v) in w.iter().enumerate() {
                ws.set_input(s, t, std::slice::from_ref(v));
            }
        }
        lstm.zero_grad();
        lstm.forward_batch(&mut ws);
        let grad: Vec<f64> = ws.h_last().to_vec();
        lstm.backward_batch_last(&grad, &mut ws, false);

        let loss = |net: &mut Lstm| -> f64 {
            windows
                .iter()
                .map(|w| {
                    let seq: Vec<Vec<f64>> = w.iter().map(|&v| vec![v]).collect();
                    let h = net.forward_inference(&seq);
                    0.5 * h.iter().map(|v| v * v).sum::<f64>()
                })
                .sum()
        };
        let indices = probe_indices(lstm.param_count(), 16);
        let report = check_gradients(&mut lstm, loss, &indices, 1e-6);
        assert!(report.passes(1e-5), "{report:?}");
        assert_eq!(report.checked, 16);
    }

    #[test]
    fn conv_fused_batched_backward_passes_the_check() {
        use crate::conv::{Conv1d, ConvWorkspace};

        let mut rng = DetRng::seed_from_u64(12);
        let mut conv = Conv1d::new(&mut rng, 1, 3, 2, Activation::Tanh);
        let windows: Vec<Vec<f64>> = (0..2)
            .map(|i| (0..6).map(|t| ((i * 6 + t) as f64 * 0.53).cos()).collect())
            .collect();
        let t_out = 6 - 2 + 1;

        // Fused im2col forward + weights-only backward, with upstream
        // gradient dL/dy = y, i.e. L = Σ ½‖y‖² over the whole batch.
        let mut ws = ConvWorkspace::new();
        conv.stage_batch(&mut ws, windows.len(), 6);
        for (s, w) in windows.iter().enumerate() {
            ws.input_mut(s).copy_from_slice(w);
        }
        conv.zero_grad();
        conv.forward_batch(&mut ws);
        for s in 0..windows.len() {
            for t in 0..t_out {
                let y: Vec<f64> = ws.output_row(s, t).to_vec();
                ws.grad_output_row_mut(s, t).copy_from_slice(&y);
            }
        }
        conv.backward_batch_weights_only(&mut ws);

        let loss = |net: &mut Conv1d| -> f64 {
            windows
                .iter()
                .map(|w| {
                    let y = net.forward_inference(std::slice::from_ref(w));
                    0.5 * y
                        .iter()
                        .flat_map(|ch| ch.iter())
                        .map(|v| v * v)
                        .sum::<f64>()
                })
                .sum()
        };
        let indices = probe_indices(conv.param_count(), 9);
        let report = check_gradients(&mut conv, loss, &indices, 1e-6);
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn probe_indices_cover_the_range() {
        let idx = probe_indices(100, 5);
        assert_eq!(idx.len(), 5);
        assert!(idx[0] < idx[4]);
        assert!(idx.iter().all(|&i| i < 100));
        assert!(probe_indices(0, 5).is_empty());
        assert_eq!(probe_indices(3, 10).len(), 3);
    }
}
