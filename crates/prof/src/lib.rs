//! # eadrl-prof — trace-driven profiler for `eadrl-obs` traces
//!
//! Post-hoc analysis of the JSONL traces the workspace's telemetry
//! layer writes: no sampling, no ptrace, no clocks of its own — every
//! number in a report comes from timestamps already in the trace, so
//! analyzing the same trace twice gives byte-identical output.
//!
//! The pipeline:
//!
//! 1. [`trace::Trace`] — tolerant JSONL loading (damaged trailing
//!    lines, ring-overflow markers);
//! 2. [`tree::SpanTree`] — span-tree reconstruction from `/`-joined
//!    span paths, with per-path total time, self time, call counts and
//!    p50/p95/p99;
//! 3. [`flame::folded`] — folded-stack flamegraph export
//!    (`a;b;leaf self_us`, consumable by `flamegraph.pl`/speedscope);
//! 4. [`workers::Utilization`] — per-worker busy time, imbalance
//!    ratio, and chunking skew from `par.worker` spans;
//! 5. [`diff::DiffReport`] — path-by-path latency comparison with a
//!    ratio threshold and noise floor: the CI regression gate;
//! 6. [`report`] — deterministic text and JSON rendering.
//!
//! The `obs_report` binary wires these into a CLI; see the README's
//! *Profiling* section for the workflow.
//!
//! ## Thread-count independence
//!
//! Worker spans inherit their caller's span path, so the tree *paths*
//! are identical at every `EADRL_PAR_THREADS` setting; only the number
//! of `par.worker` chunk spans varies. [`tree::TreeOptions::shape_stable`]
//! collapses those, making tree shape and counts bitwise-comparable
//! across thread counts — the property the cross-thread golden test
//! and the CI diff gate rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod flame;
pub mod report;
pub mod trace;
pub mod tree;
pub mod workers;

pub use diff::{DiffOptions, DiffReport, PathDelta};
pub use trace::Trace;
pub use tree::{SpanNode, SpanTree, TreeOptions};
pub use workers::{Utilization, WorkerStats};
