//! Persistence of trained combination policies.
//!
//! EA-DRL's whole deployment story is "train offline, ship the policy
//! network" — so the policy must survive a process restart. A
//! [`PolicySnapshot`] captures everything needed to rebuild the deployed
//! actor (topology, squash, parameters) in a small, dependency-free text
//! format. Parameters are stored as hexadecimal `f64` bit patterns, so
//! the round trip is bit-exact.

use eadrl_rl::ActionSquash;
use std::io::{BufRead, BufReader, Read, Write};

/// A serializable snapshot of a trained EA-DRL actor.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySnapshot {
    /// State window length ω.
    pub omega: usize,
    /// Action dimension (pool size m).
    pub action_dim: usize,
    /// Hidden-layer sizes of the actor MLP.
    pub hidden: Vec<usize>,
    /// Output map.
    pub squash: ActionSquash,
    /// Flat actor parameters (see `eadrl_nn::Network::flat_params`).
    pub params: Vec<f64>,
    /// The deployed policy's current state window (so a restored policy
    /// resumes exactly where the saved one stopped).
    pub window: Vec<f64>,
}

/// Errors while reading a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the snapshot text.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(msg) => write!(f, "snapshot format error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

const MAGIC: &str = "eadrl-policy v1";

fn squash_tag(squash: ActionSquash) -> String {
    match squash {
        ActionSquash::Identity => "identity".to_string(),
        ActionSquash::Tanh => "tanh".to_string(),
        ActionSquash::Softmax => "softmax".to_string(),
        ActionSquash::BoundedSoftmax { scale } => {
            format!("bounded:{:x}", scale.to_bits())
        }
    }
}

fn parse_squash(tag: &str) -> Result<ActionSquash, PersistError> {
    match tag {
        "identity" => Ok(ActionSquash::Identity),
        "tanh" => Ok(ActionSquash::Tanh),
        "softmax" => Ok(ActionSquash::Softmax),
        other => {
            if let Some(hex) = other.strip_prefix("bounded:") {
                let bits = u64::from_str_radix(hex, 16)
                    .map_err(|_| PersistError::Format(format!("bad squash scale {hex:?}")))?;
                Ok(ActionSquash::BoundedSoftmax {
                    scale: f64::from_bits(bits),
                })
            } else {
                Err(PersistError::Format(format!("unknown squash {other:?}")))
            }
        }
    }
}

fn write_floats<W: Write>(writer: &mut W, label: &str, values: &[f64]) -> std::io::Result<()> {
    write!(writer, "{label} {}", values.len())?;
    for v in values {
        write!(writer, " {:x}", v.to_bits())?;
    }
    writeln!(writer)
}

fn parse_floats(line: &str, label: &str) -> Result<Vec<f64>, PersistError> {
    let mut parts = line.split_whitespace();
    let got = parts.next().unwrap_or_default();
    if got != label {
        return Err(PersistError::Format(format!(
            "expected {label:?} line, got {got:?}"
        )));
    }
    let count: usize = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| PersistError::Format(format!("{label}: bad count")))?;
    let values: Result<Vec<f64>, _> = parts
        .map(|hex| u64::from_str_radix(hex, 16).map(f64::from_bits))
        .collect();
    let values = values.map_err(|_| PersistError::Format(format!("{label}: bad hex float")))?;
    if values.len() != count {
        return Err(PersistError::Format(format!(
            "{label}: expected {count} values, found {}",
            values.len()
        )));
    }
    Ok(values)
}

impl PolicySnapshot {
    /// Writes the snapshot in the v1 text format.
    pub fn write<W: Write>(&self, mut writer: W) -> Result<(), PersistError> {
        writeln!(writer, "{MAGIC}")?;
        writeln!(writer, "omega {}", self.omega)?;
        writeln!(writer, "action_dim {}", self.action_dim)?;
        write!(writer, "hidden {}", self.hidden.len())?;
        for h in &self.hidden {
            write!(writer, " {h}")?;
        }
        writeln!(writer)?;
        writeln!(writer, "squash {}", squash_tag(self.squash))?;
        write_floats(&mut writer, "params", &self.params)?;
        write_floats(&mut writer, "window", &self.window)?;
        Ok(())
    }

    /// Reads a snapshot written by [`PolicySnapshot::write`].
    pub fn read<R: Read>(reader: R) -> Result<Self, PersistError> {
        let mut lines = BufReader::new(reader).lines();
        let mut next = |what: &str| -> Result<String, PersistError> {
            lines
                .next()
                .ok_or_else(|| PersistError::Format(format!("missing {what} line")))?
                .map_err(PersistError::Io)
        };
        let magic = next("magic")?;
        if magic.trim() != MAGIC {
            return Err(PersistError::Format(format!(
                "bad magic {magic:?}, expected {MAGIC:?}"
            )));
        }
        let parse_usize_line = |line: String, label: &str| -> Result<usize, PersistError> {
            let mut parts = line.split_whitespace();
            if parts.next() != Some(label) {
                return Err(PersistError::Format(format!("expected {label} line")));
            }
            parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| PersistError::Format(format!("{label}: bad value")))
        };
        let omega = parse_usize_line(next("omega")?, "omega")?;
        let action_dim = parse_usize_line(next("action_dim")?, "action_dim")?;
        let hidden_line = next("hidden")?;
        let mut hp = hidden_line.split_whitespace();
        if hp.next() != Some("hidden") {
            return Err(PersistError::Format("expected hidden line".into()));
        }
        let hcount: usize = hp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| PersistError::Format("hidden: bad count".into()))?;
        let hidden: Result<Vec<usize>, _> = hp.map(|v| v.parse::<usize>()).collect();
        let hidden = hidden.map_err(|_| PersistError::Format("hidden: bad size".into()))?;
        if hidden.len() != hcount {
            return Err(PersistError::Format("hidden: count mismatch".into()));
        }
        let squash_line = next("squash")?;
        let tag = squash_line
            .strip_prefix("squash ")
            .ok_or_else(|| PersistError::Format("expected squash line".into()))?;
        let squash = parse_squash(tag.trim())?;
        let params = parse_floats(&next("params")?, "params")?;
        let window = parse_floats(&next("window")?, "window")?;
        Ok(PolicySnapshot {
            omega,
            action_dim,
            hidden,
            squash,
            params,
            window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PolicySnapshot {
        PolicySnapshot {
            omega: 10,
            action_dim: 43,
            hidden: vec![32, 32],
            squash: ActionSquash::BoundedSoftmax { scale: 6.0 },
            params: vec![0.1, -2.5, std::f64::consts::PI, 1e-300],
            window: vec![1.0, 2.0, 3.0],
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let snap = sample();
        let mut buf = Vec::new();
        snap.write(&mut buf).unwrap();
        let back = PolicySnapshot::read(buf.as_slice()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn all_squash_variants_roundtrip() {
        for squash in [
            ActionSquash::Identity,
            ActionSquash::Tanh,
            ActionSquash::Softmax,
            ActionSquash::BoundedSoftmax { scale: 3.25 },
        ] {
            let snap = PolicySnapshot { squash, ..sample() };
            let mut buf = Vec::new();
            snap.write(&mut buf).unwrap();
            assert_eq!(PolicySnapshot::read(buf.as_slice()).unwrap().squash, squash);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = PolicySnapshot::read("not a policy\n".as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let snap = sample();
        let mut buf = Vec::new();
        snap.write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(PolicySnapshot::read(truncated.as_bytes()).is_err());
    }

    #[test]
    fn corrupted_params_are_rejected() {
        let snap = sample();
        let mut buf = Vec::new();
        snap.write(&mut buf).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("params 4", "params 9");
        assert!(PolicySnapshot::read(text.as_bytes()).is_err());
    }
}
