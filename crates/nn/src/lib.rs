#![allow(clippy::needless_range_loop)] // index loops over multiple parallel arrays read clearer in numeric kernels

//! Minimal neural-network library with manual backpropagation.
//!
//! This crate is the learning substrate of the reproduction. It powers
//!
//! * the **actor** (policy) and **critic** (value) networks of the DDPG
//!   agent in `eadrl-rl` — plain MLPs, as in the paper's setup, and
//! * the neural base forecasters of `eadrl-models` (MLP, LSTM, Bi-LSTM,
//!   CNN-LSTM, Conv-LSTM).
//!
//! Scope is deliberately small: single-sample forward/backward passes over
//! `f64` slices, explicit gradient buffers per layer, and optimizers that
//! walk a network's parameters via the [`Network`] visitor. The networks in
//! the paper are tiny (states are ω ≈ 10-dimensional windows, actions are
//! m ≤ 43-dimensional weight vectors), so clarity beats vectorization here.
//!
//! Layers cache their forward activations, so the usage pattern is strictly
//! `forward` → `backward` → optimizer `step` → `zero_grad`.

pub mod activation;
pub mod conv;
pub mod dense;
pub mod gradcheck;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod mlp;
pub mod network;
pub mod optimizer;

pub use activation::Activation;
pub use conv::Conv1d;
pub use dense::Dense;
pub use gradcheck::{check_gradients, check_gradients_batched, probe_indices, GradCheckReport};
pub use loss::{mse_loss, mse_loss_grad};
pub use lstm::{BiLstm, Lstm};
pub use mlp::Mlp;
pub use network::{BatchNetwork, Network};
pub use optimizer::{Adam, Optimizer, Sgd};
