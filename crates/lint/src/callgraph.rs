//! Workspace-wide call graph over the [`crate::ast`] item trees.
//!
//! Name resolution is deliberately *conservative*: an unresolvable call
//! produces no edge (std / external targets are handled by the intrinsic
//! site lists in `ast`), and an ambiguous call produces an edge to
//! **every** plausible target — a method call `.predict(…)` edges to
//! every visible workspace method named `predict`, and a call through a
//! trait edges to every implementor. Over-approximation keeps the
//! panic/allocation/taint passes sound (no missed chain); the dependency
//! map parsed from the crates' `Cargo.toml`s keeps it from drowning in
//! false edges (a crate's calls can only land in crates it can actually
//! see).
//!
//! Resolution rules, in order:
//!
//! 1. the head segment is rewritten through the file's use-map
//!    (`use eadrl_linalg::kernels; … kernels::gemm(…)`), then
//!    `crate`/`self`/`super`/`Self` are normalized;
//! 2. `eadrl_<x>::…` pins the target crate; otherwise the caller's
//!    visible-crate set (itself + transitive deps) bounds the search;
//! 3. the segment before the fn name, when present, must match the
//!    target's receiver type, implemented trait, or enclosing module
//!    name; bare calls match free fns of the caller's own crate
//!    (same-module matches win when they exist);
//! 4. calls that land on a `trait` declaration fan out to all
//!    implementors via synthetic decl → impl edges;
//! 5. only library-unit, non-test fns can be call *targets* — test and
//!    bench helpers never contaminate library verdicts.

use crate::ast::{CallKind, FileAst};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

/// Crates that are build/analysis tooling, not forecast-producing
/// library surface. They are dev-dependencies only — never linked into
/// production binaries — so the graph excludes their trait impls from
/// decl fan-out (library code cannot dispatch to them at runtime), and
/// the deep passes exclude their pub fns from the verdict table.
pub const TOOL_CRATES: &[&str] = &["bench", "lint", "prof", "ptest", "sim"];

/// One fn node in the graph. Metadata is copied out of the [`FileAst`]s
/// so passes can work off the graph alone; `file`/`fn_idx` point back at
/// the full [`crate::ast::FnDef`] (sites, calls) when needed.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into the analyzed file list.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
    /// Fn name.
    pub name: String,
    /// `Type::name` or bare `name`.
    pub label: String,
    /// Owning crate (short name: `linalg`, `nn`, …).
    pub crate_name: String,
    /// Lives in a `src/` library unit (not tests/benches/examples).
    pub is_lib: bool,
    /// `pub`-reachable.
    pub is_pub: bool,
    /// Test code (`#[cfg(test)]` / `#[test]` / non-lib unit).
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Workspace-relative path.
    pub rel_path: String,
}

impl Node {
    /// `crate::Type::fn` — the stable identifier used in reports,
    /// chains, DOT output and `HotPathConfig` matching.
    pub fn qualified(&self) -> String {
        format!("{}::{}", self.crate_name, self.label)
    }
}

/// A call edge with the source line of the call site (for chains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee node id.
    pub to: usize,
    /// Line of the call site in the *caller*.
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All fn nodes, in file order.
    pub nodes: Vec<Node>,
    /// Outgoing edges per node (sorted, deduped by callee).
    pub edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Builds the graph. `deps` maps each crate short name to its direct
    /// `eadrl-*` dependencies (see [`workspace_deps`]); a crate missing
    /// from the map is treated as seeing every analyzed crate.
    pub fn build(asts: &[FileAst], deps: &BTreeMap<String, BTreeSet<String>>) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, ast) in asts.iter().enumerate() {
            for (di, def) in ast.fns.iter().enumerate() {
                nodes.push(Node {
                    file: fi,
                    fn_idx: di,
                    name: def.name.clone(),
                    label: def.label(),
                    crate_name: ast.crate_name.clone(),
                    is_lib: ast.is_lib,
                    is_pub: def.is_pub,
                    is_test: def.is_test || !ast.is_lib,
                    line: def.line,
                    rel_path: ast.rel_path.clone(),
                });
            }
        }
        let closure = transitive_deps(deps);
        let all_crates: BTreeSet<String> = nodes.iter().map(|n| n.crate_name.clone()).collect();

        // Candidate index: fn name → target node ids (library, non-test).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            if n.is_lib && !n.is_test {
                by_name.entry(n.name.as_str()).or_default().push(id);
            }
        }

        let resolver = Resolver {
            asts,
            nodes: &nodes,
            by_name,
            closure,
            all_crates,
        };

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (id, n) in nodes.iter().enumerate() {
            let def = &asts[n.file].fns[n.fn_idx];
            let mut out: BTreeSet<Edge> = BTreeSet::new();
            for call in &def.calls {
                for target in resolver.resolve(n, call) {
                    if target != id {
                        out.insert(Edge {
                            to: target,
                            line: call.line,
                        });
                    }
                }
            }
            edges[id] = out.into_iter().collect();
        }

        // Trait-decl fan-out: a call landing on `trait T { fn m(…); }`
        // reaches every `impl T for X { fn m … }` — except implementors
        // living in tool crates when the decl does not: tool crates are
        // dev-only, so e.g. eadrl-sim's deliberately faulty `Forecaster`
        // proxies can never be dispatch targets of production code, and
        // routing library chains through their injected panics would
        // poison every caller of the trait.
        let mut fanout: Vec<(usize, Edge)> = Vec::new();
        for (id, n) in nodes.iter().enumerate() {
            let def = &asts[n.file].fns[n.fn_idx];
            if !def.in_trait_decl {
                continue;
            }
            let decl_is_tool = TOOL_CRATES.contains(&n.crate_name.as_str());
            let trait_name = def.self_type.clone();
            for (tid, tn) in nodes.iter().enumerate() {
                if tid == id || tn.is_test || !tn.is_lib || tn.name != n.name {
                    continue;
                }
                if !decl_is_tool && TOOL_CRATES.contains(&tn.crate_name.as_str()) {
                    continue;
                }
                let tdef = &asts[tn.file].fns[tn.fn_idx];
                if tdef.trait_impl == trait_name && trait_name.is_some() {
                    fanout.push((
                        id,
                        Edge {
                            to: tid,
                            line: n.line,
                        },
                    ));
                }
            }
        }
        for (from, e) in fanout {
            if !edges[from].iter().any(|x| x.to == e.to) {
                edges[from].push(e);
            }
        }
        for list in &mut edges {
            list.sort();
            list.dedup_by_key(|e| e.to);
        }
        CallGraph { nodes, edges }
    }

    /// Reverse adjacency (callee → callers), edge lines preserved.
    pub fn reverse_edges(&self) -> Vec<Vec<Edge>> {
        let mut rev: Vec<Vec<Edge>> = vec![Vec::new(); self.nodes.len()];
        for (from, outs) in self.edges.iter().enumerate() {
            for e in outs {
                rev[e.to].push(Edge {
                    to: from,
                    line: e.line,
                });
            }
        }
        rev
    }

    /// Node ids whose qualified name, label, or `module::name` matches
    /// `pattern` (used by `HotPathConfig` rows and `--explain`).
    pub fn find(&self, asts: &[FileAst], pattern: &str) -> Vec<usize> {
        let mut out = Vec::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if n.is_test || !n.is_lib {
                continue;
            }
            if n.qualified() == pattern || n.label == pattern || n.name == pattern {
                out.push(id);
                continue;
            }
            let def = &self.nodes[id];
            let module = &asts[def.file].fns[def.fn_idx].module;
            if let Some(m) = module.last() {
                if format!("{m}::{}", n.name) == pattern {
                    out.push(id);
                }
            }
        }
        out
    }

    /// DOT export of the whole graph, crates as clusters. Deterministic
    /// output (node order = build order, edges sorted).
    pub fn to_dot(&self) -> String {
        let mut s =
            String::from("digraph eadrl {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if n.is_test || !n.is_lib {
                continue;
            }
            by_crate.entry(n.crate_name.as_str()).or_default().push(id);
        }
        for (krate, ids) in &by_crate {
            s.push_str(&format!(
                "  subgraph \"cluster_{krate}\" {{\n    label=\"{krate}\";\n"
            ));
            for &id in ids {
                s.push_str(&format!(
                    "    n{id} [label=\"{}\"];\n",
                    self.nodes[id].label.replace('"', "\\\"")
                ));
            }
            s.push_str("  }\n");
        }
        for (from, outs) in self.edges.iter().enumerate() {
            let fnode = &self.nodes[from];
            if fnode.is_test || !fnode.is_lib {
                continue;
            }
            for e in outs {
                let t = &self.nodes[e.to];
                if t.is_test || !t.is_lib {
                    continue;
                }
                s.push_str(&format!("  n{from} -> n{};\n", e.to));
            }
        }
        s.push_str("}\n");
        s
    }
}

impl PartialOrd for Edge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Edge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.to, self.line).cmp(&(other.to, other.line))
    }
}

struct Resolver<'a> {
    asts: &'a [FileAst],
    nodes: &'a [Node],
    by_name: BTreeMap<&'a str, Vec<usize>>,
    closure: BTreeMap<String, BTreeSet<String>>,
    all_crates: BTreeSet<String>,
}

impl<'a> Resolver<'a> {
    /// Crates whose items `caller_crate` can reference.
    fn visible(&self, caller_crate: &str) -> BTreeSet<String> {
        match self.closure.get(caller_crate) {
            Some(set) => {
                let mut v = set.clone();
                v.insert(caller_crate.to_string());
                v
            }
            // Unknown crate (fixture mini-crates): conservatively sees
            // everything analyzed alongside it.
            None => self.all_crates.clone(),
        }
    }

    fn resolve(&self, caller: &Node, call: &crate::ast::CallSite) -> Vec<usize> {
        match &call.kind {
            CallKind::Macro { .. } => Vec::new(), // macro bodies are not expanded
            CallKind::Method { name } => {
                let visible = self.visible(&caller.crate_name);
                self.by_name
                    .get(name.as_str())
                    .into_iter()
                    .flatten()
                    .copied()
                    .filter(|&id| {
                        let n = &self.nodes[id];
                        let def = &self.asts[n.file].fns[n.fn_idx];
                        def.self_type.is_some() && visible.contains(&n.crate_name)
                    })
                    .collect()
            }
            CallKind::Path { segments } => self.resolve_path(caller, segments),
        }
    }

    fn resolve_path(&self, caller: &Node, segments: &[String]) -> Vec<usize> {
        let ast = &self.asts[caller.file];
        let caller_def = &ast.fns[caller.fn_idx];
        // Head rewrite through the use-map, then keyword normalization.
        let mut segs: Vec<String> = segments.to_vec();
        if let Some(full) = ast.uses.get(&segs[0]) {
            // `use a::b; … b::f()` — but `use a::b::f; f()` also lands
            // here with segs == [f]; either way splice the full path in
            // place of the head segment.
            let mut new = full.clone();
            new.extend(segs[1..].iter().cloned());
            segs = new;
        }
        match segs[0].as_str() {
            "crate" => segs[0] = format!("eadrl_{}", ast.crate_name),
            "self" => {
                let mut new = vec![format!("eadrl_{}", ast.crate_name)];
                new.extend(caller_def.module.iter().cloned());
                new.extend(segs[1..].iter().cloned());
                segs = new;
            }
            "super" => {
                let mut new = vec![format!("eadrl_{}", ast.crate_name)];
                let m = &caller_def.module;
                new.extend(m[..m.len().saturating_sub(1)].iter().cloned());
                new.extend(segs[1..].iter().cloned());
                segs = new;
            }
            "Self" => {
                if let Some(ty) = &caller_def.self_type {
                    segs[0] = ty.clone();
                } else {
                    return Vec::new();
                }
            }
            _ => {}
        }
        let fname = segs.last().cloned().unwrap_or_default();
        let candidates: &[usize] = match self.by_name.get(fname.as_str()) {
            Some(v) => v,
            None => return Vec::new(),
        };

        // Crate pin: `eadrl_<x>::…` restricts to crate x; otherwise the
        // caller's visibility set bounds the search.
        let (pinned, qualifier): (Option<String>, Option<&String>) = if segs.len() >= 2 {
            let head = &segs[0];
            let pin = head
                .strip_prefix("eadrl_")
                .map(str::to_string)
                .or_else(|| (head == "eadrl").then(|| "eadrl".to_string()));
            let q = &segs[segs.len() - 2];
            let q = if pin.is_some() && segs.len() == 2 {
                None // `eadrl_obs::warn(…)` — crate-root free fn
            } else {
                Some(q)
            };
            (pin, q)
        } else {
            (None, None)
        };
        let visible = match &pinned {
            Some(c) => {
                let mut s = BTreeSet::new();
                s.insert(c.clone());
                s
            }
            None => self.visible(&caller.crate_name),
        };

        let matches = |id: usize, same_module_only: bool| -> bool {
            let n = &self.nodes[id];
            if !visible.contains(&n.crate_name) {
                return false;
            }
            let def = &self.asts[n.file].fns[n.fn_idx];
            match qualifier {
                Some(q) => {
                    def.self_type.as_deref() == Some(q.as_str())
                        || def.trait_impl.as_deref() == Some(q.as_str())
                        || def.module.last() == Some(q)
                }
                None => {
                    // Bare call (or crate-root path): free fns only; a
                    // method cannot be invoked without a receiver path.
                    if def.self_type.is_some() {
                        return false;
                    }
                    if pinned.is_some() {
                        return true;
                    }
                    // Unqualified: same crate; same module preferred.
                    n.crate_name == caller.crate_name
                        && (!same_module_only || def.module == caller_def.module)
                }
            }
        };
        if qualifier.is_none() && pinned.is_none() {
            // Same-module match wins outright when it exists (tightest
            // scope); otherwise fall back to same-crate free fns.
            let same: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&id| matches(id, true))
                .collect();
            if !same.is_empty() {
                return same;
            }
        }
        candidates
            .iter()
            .copied()
            .filter(|&id| matches(id, false))
            .collect()
    }
}

/// Transitive closure of the direct-dependency map.
fn transitive_deps(
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    for name in deps.keys() {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack: Vec<&String> = deps
            .get(name)
            .map(|s| s.iter().collect())
            .unwrap_or_default();
        while let Some(d) = stack.pop() {
            if seen.insert(d.clone()) {
                if let Some(next) = deps.get(d) {
                    stack.extend(next.iter());
                }
            }
        }
        out.insert(name.clone(), seen);
    }
    out
}

/// Parses `crates/*/Cargo.toml` (plus the workspace root's) into a map
/// of crate short name → direct `eadrl-*` dependency short names. The
/// umbrella crate at the workspace root is registered as `eadrl`.
pub fn workspace_deps(workspace_root: &Path) -> io::Result<BTreeMap<String, BTreeSet<String>>> {
    let mut map = BTreeMap::new();
    let crates_dir = workspace_root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let manifest = entry.path().join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            let short = entry.file_name().to_string_lossy().to_string();
            let text = fs::read_to_string(&manifest)?;
            map.insert(short, manifest_deps(&text));
        }
    }
    let root_manifest = workspace_root.join("Cargo.toml");
    if root_manifest.is_file() {
        let text = fs::read_to_string(&root_manifest)?;
        map.insert("eadrl".to_string(), manifest_deps(&text));
    }
    Ok(map)
}

/// Extracts `eadrl-*` dependency short names from a manifest's
/// `[dependencies]` / `[dev-dependencies]` sections.
fn manifest_deps(text: &str) -> BTreeSet<String> {
    let mut deps = BTreeSet::new();
    let mut in_deps = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line.starts_with("[dependencies")
                || line.starts_with("[dev-dependencies")
                || line.starts_with("[build-dependencies");
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().trim_matches('"');
            if let Some(short) = key.strip_prefix("eadrl-") {
                deps.insert(short.replace('-', "_"));
            }
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::source::SourceFile;

    fn build(files: &[(&str, &str)]) -> (Vec<FileAst>, CallGraph) {
        let asts: Vec<FileAst> = files
            .iter()
            .map(|(p, s)| parse_file(&SourceFile::parse(p, s)))
            .collect();
        let mut deps = BTreeMap::new();
        deps.insert("core".to_string(), {
            let mut s = BTreeSet::new();
            s.insert("linalg".to_string());
            s
        });
        deps.insert("linalg".to_string(), BTreeSet::new());
        deps.insert("island".to_string(), BTreeSet::new());
        let graph = CallGraph::build(&asts, &deps);
        (asts, graph)
    }

    fn node(graph: &CallGraph, q: &str) -> usize {
        graph
            .nodes
            .iter()
            .position(|n| n.qualified() == q)
            .unwrap_or_else(|| panic!("no node {q}"))
    }

    fn has_edge(graph: &CallGraph, from: &str, to: &str) -> bool {
        let f = node(graph, from);
        let t = node(graph, to);
        graph.edges[f].iter().any(|e| e.to == t)
    }

    #[test]
    fn bare_calls_resolve_same_module_first() {
        let (_, g) = build(&[
            (
                "crates/core/src/a.rs",
                "pub fn caller() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/core/src/b.rs", "pub fn helper() {}\n"),
        ]);
        assert!(has_edge(&g, "core::caller", "core::helper"));
        // Same-module helper wins; cross-module same-name is not edged.
        let f = node(&g, "core::caller");
        assert_eq!(g.edges[f].len(), 1);
    }

    #[test]
    fn qualified_paths_resolve_modules_types_and_crates() {
        let (_, g) = build(&[
            (
                "crates/linalg/src/kernels.rs",
                "pub fn gemm() {}\npub struct Workspace;\nimpl Workspace { pub fn take(&mut self) {} }\n",
            ),
            (
                "crates/core/src/x.rs",
                "use eadrl_linalg::kernels;\npub fn run(w: &mut kernels::Workspace) {\n    kernels::gemm();\n    w.take();\n    eadrl_linalg::kernels::gemm();\n}\n",
            ),
        ]);
        assert!(has_edge(&g, "core::run", "linalg::gemm"));
        assert!(has_edge(&g, "core::run", "linalg::Workspace::take"));
    }

    #[test]
    fn dep_map_blocks_invisible_crates() {
        let (_, g) = build(&[
            (
                "crates/island/src/lib.rs",
                "pub fn gemm() {}\n", // same name, but core does not depend on island
            ),
            ("crates/linalg/src/kernels.rs", "pub fn gemm() {}\n"),
            (
                "crates/core/src/x.rs",
                "pub fn run() { kernels::gemm(); }\n",
            ),
        ]);
        assert!(has_edge(&g, "core::run", "linalg::gemm"));
        assert!(!has_edge(&g, "core::run", "island::gemm"));
    }

    #[test]
    fn trait_calls_fan_out_to_all_implementors() {
        let (_, g) = build(&[(
            "crates/core/src/m.rs",
            "pub trait Model { fn fit(&mut self); }\n\
             pub struct A; impl Model for A { fn fit(&mut self) { a_only(); } }\n\
             pub struct B; impl Model for B { fn fit(&mut self) { b_only(); } }\n\
             fn a_only() {}\nfn b_only() {}\n\
             pub fn train(m: &mut dyn Model) { m.fit(); }\n",
        )]);
        let train = node(&g, "core::train");
        // `.fit()` edges to the decl and both impls; decl fans out too.
        let decl = node(&g, "core::Model::fit");
        assert!(g.edges[train].iter().any(|e| e.to == decl));
        assert!(has_edge(&g, "core::Model::fit", "core::A::fit"));
        assert!(has_edge(&g, "core::Model::fit", "core::B::fit"));
        assert!(has_edge(&g, "core::A::fit", "core::a_only"));
    }

    #[test]
    fn trait_fanout_skips_tool_crate_implementors() {
        // `sim` is in TOOL_CRATES: its fault-injection proxies implement
        // library traits but are dev-only, so a library trait decl must
        // not fan out into them (their injected panics would otherwise
        // taint every production caller of the trait).
        let (_, g) = build(&[
            (
                "crates/models/src/m.rs",
                "pub trait Model { fn fit(&mut self); }\n\
                 pub struct Real; impl Model for Real { fn fit(&mut self) {} }\n",
            ),
            (
                "crates/sim/src/proxy.rs",
                "use eadrl_models::Model;\n\
                 pub struct Faulty; impl Model for Faulty { fn fit(&mut self) { panic!(\"injected\") } }\n",
            ),
        ]);
        assert!(has_edge(&g, "models::Model::fit", "models::Real::fit"));
        assert!(!has_edge(&g, "models::Model::fit", "sim::Faulty::fit"));
    }

    #[test]
    fn self_paths_resolve_to_own_impl() {
        let (_, g) = build(&[(
            "crates/core/src/s.rs",
            "pub struct S;\nimpl S {\n    pub fn outer(&self) { Self::inner(); }\n    fn inner() {}\n}\n",
        )]);
        assert!(has_edge(&g, "core::S::outer", "core::S::inner"));
    }

    #[test]
    fn fn_references_in_par_map_produce_edges() {
        let (_, g) = build(&[(
            "crates/core/src/p.rs",
            "pub struct S;\nimpl S { pub fn step(x: u64) -> u64 { x } }\n\
             pub fn run(xs: Vec<u64>) { par_map(xs, S::step); }\n",
        )]);
        assert!(has_edge(&g, "core::run", "core::S::step"));
    }

    #[test]
    fn test_fns_are_not_call_targets() {
        let (_, g) = build(&[(
            "crates/core/src/t.rs",
            "pub fn caller() { helper(); }\n\
             #[cfg(test)]\nmod tests {\n    pub fn helper() { panic!(\"boom\") }\n}\n",
        )]);
        let c = node(&g, "core::caller");
        assert!(g.edges[c].is_empty(), "test helper must not be a target");
    }

    #[test]
    fn manifest_deps_parse_path_dependencies() {
        let toml = "[package]\nname = \"eadrl-core\"\n\n[dependencies]\neadrl-linalg = { path = \"../linalg\" }\neadrl-obs = { path = \"../obs\" }\n\n[dev-dependencies]\neadrl-ptest = { path = \"../ptest\" }\n";
        let deps = manifest_deps(toml);
        assert!(deps.contains("linalg"));
        assert!(deps.contains("obs"));
        assert!(deps.contains("ptest"));
        assert_eq!(deps.len(), 3);
    }

    #[test]
    fn dot_export_is_deterministic_and_clustered() {
        let (_, g) = build(&[(
            "crates/core/src/a.rs",
            "pub fn caller() { helper(); }\nfn helper() {}\n",
        )]);
        let dot = g.to_dot();
        assert!(dot.contains("subgraph \"cluster_core\""));
        assert!(dot.contains("->"));
        assert_eq!(dot, g.to_dot());
    }
}
