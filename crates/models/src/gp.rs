//! Gaussian-process regression with an RBF kernel.

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use eadrl_linalg::vector::sq_dist;
use eadrl_linalg::{Cholesky, Matrix};

/// Exact GP regression with a squared-exponential kernel
/// `k(a,b) = σ_f² exp(-||a-b||² / (2ℓ²))` and observation noise `σ_n²`.
///
/// Training cost is cubic in the number of points, so the fit subsamples
/// (evenly, keeping temporal coverage) to at most `max_points` inducing
/// points — the classic subset-of-data approximation.
#[derive(Debug, Clone)]
pub struct GpRegressor {
    length_scale: f64,
    signal_var: f64,
    noise_var: f64,
    max_points: usize,
    train_x: Vec<Vec<f64>>,
    /// `K⁻¹ y` over the retained points.
    alpha: Vec<f64>,
    y_mean: f64,
}

impl GpRegressor {
    /// Creates an unfitted GP.
    pub fn new(length_scale: f64, noise_var: f64, max_points: usize) -> Self {
        GpRegressor {
            length_scale: length_scale.max(1e-6),
            signal_var: 1.0,
            noise_var: noise_var.max(1e-9),
            max_points: max_points.max(8),
            train_x: Vec::new(),
            alpha: Vec::new(),
            y_mean: 0.0,
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        self.signal_var * (-sq_dist(a, b) / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    /// Number of retained training points.
    pub fn n_points(&self) -> usize {
        self.train_x.len()
    }
}

impl TabularModel for GpRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        // Even subsample to max_points for tractability.
        let n = inputs.len();
        let stride = n.div_ceil(self.max_points);
        let keep: Vec<usize> = (0..n).step_by(stride.max(1)).collect();
        self.train_x = keep.iter().map(|&i| inputs[i].clone()).collect();
        let y: Vec<f64> = keep.iter().map(|&i| targets[i]).collect();
        self.y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let centered: Vec<f64> = y.iter().map(|v| v - self.y_mean).collect();

        let m = self.train_x.len();
        let mut k = Matrix::zeros(m, m);
        for i in 0..m {
            for j in i..m {
                let v = self.kernel(&self.train_x[i], &self.train_x[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += self.noise_var;
        }
        // Jitter escalation when the kernel matrix is near-singular.
        let mut jitter = 0.0;
        let ch = loop {
            let mut kj = k.clone();
            if jitter > 0.0 {
                kj.add_diagonal(jitter);
            }
            match Cholesky::new(&kj) {
                Ok(ch) => break ch,
                Err(_) if jitter < 1.0 => {
                    // eadrl-lint: allow(no-float-eq): sentinel test — jitter is exactly 0.0 only before the first escalation
                    jitter = if jitter == 0.0 { 1e-8 } else { jitter * 10.0 };
                }
                Err(e) => {
                    return Err(ModelError::Numerical {
                        context: format!("GP kernel not PD: {e}"),
                    })
                }
            }
        };
        self.alpha = ch.solve(&centered).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        if self.train_x.is_empty() {
            return 0.0;
        }
        let k_star: f64 = self
            .train_x
            .iter()
            .zip(self.alpha.iter())
            .map(|(x, &a)| self.kernel(input, x) * a)
            .sum();
        self.y_mean + k_star
    }
}

/// A GP forecaster over embedded windows (paper family **GP**).
pub fn gaussian_process(
    k: usize,
    length_scale: f64,
    noise_var: f64,
    max_points: usize,
) -> Windowed<GpRegressor> {
    Windowed::new(
        format!("GP(ℓ={length_scale})"),
        k,
        GpRegressor::new(length_scale, noise_var, max_points),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    #[test]
    fn interpolates_smooth_function() {
        let inputs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 10.0]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x[0].sin()).collect();
        let mut gp = GpRegressor::new(1.0, 1e-4, 100);
        gp.fit(&inputs, &targets).unwrap();
        for (x, t) in inputs.iter().zip(targets.iter()).step_by(7) {
            assert!((gp.predict(x) - t).abs() < 0.05, "at {x:?}");
        }
        // Interpolation between points stays close too.
        assert!((gp.predict(&[1.05]) - 1.05_f64.sin()).abs() < 0.05);
    }

    #[test]
    fn reverts_to_mean_far_from_data() {
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| 5.0 + x[0]).collect();
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut gp = GpRegressor::new(0.5, 1e-3, 50);
        gp.fit(&inputs, &targets).unwrap();
        // 100 length-scales away: the kernel vanishes, prediction = mean.
        assert!((gp.predict(&[100.0]) - mean).abs() < 1e-6);
    }

    #[test]
    fn subsampling_caps_points() {
        let inputs: Vec<Vec<f64>> = (0..500).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let mut gp = GpRegressor::new(10.0, 1e-2, 60);
        gp.fit(&inputs, &targets).unwrap();
        assert!(gp.n_points() <= 64, "kept {}", gp.n_points());
    }

    #[test]
    fn duplicate_points_survive_via_jitter() {
        let inputs: Vec<Vec<f64>> = vec![vec![1.0]; 20];
        let targets = vec![3.0; 20];
        let mut gp = GpRegressor::new(1.0, 1e-12, 50);
        gp.fit(&inputs, &targets).unwrap();
        assert!((gp.predict(&[1.0]) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn gp_forecaster_tracks_sine() {
        let series: Vec<f64> = (0..160)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 20.0).sin() * 2.0)
            .collect();
        let mut m = gaussian_process(5, 1.0, 1e-3, 120);
        m.fit(&series).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 160.0 / 20.0).sin() * 2.0;
        assert!((m.predict_next(&series) - truth).abs() < 0.5);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let gp = GpRegressor::new(1.0, 1e-3, 10);
        assert_eq!(gp.predict(&[1.0]), 0.0);
    }

    #[test]
    fn higher_noise_shrinks_fit_toward_mean() {
        // Alternating targets around mean 0: with huge observation noise
        // the GP should barely leave the prior mean.
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.2]).collect();
        let targets: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit_amp = |noise: f64| {
            let mut gp = GpRegressor::new(0.3, noise, 50);
            gp.fit(&inputs, &targets).unwrap();
            inputs
                .iter()
                .map(|x| gp.predict(x).abs())
                .fold(0.0_f64, f64::max)
        };
        let crisp = fit_amp(1e-4);
        let mushy = fit_amp(100.0);
        assert!(crisp > 0.8, "low noise should interpolate: {crisp}");
        assert!(mushy < 0.2, "high noise should flatten: {mushy}");
    }
}
