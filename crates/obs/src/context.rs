//! Per-thread telemetry context: worker attribution, span-path
//! inheritance, and the buffered emission used by `eadrl-par`.
//!
//! A worker thread spawned by the deterministic pool has three problems
//! the global pipeline can't solve on its own:
//!
//! 1. its events should be **attributed** (`Event::thread`) so a trace
//!    can be split back into per-thread span trees;
//! 2. its spans should **nest under the caller's span path** — a model
//!    fit inside `eadrl.fit/par.map` must show up there, not as an
//!    orphaned root (and *must* do so identically at every
//!    `EADRL_PAR_THREADS`, or profile tree shapes would depend on the
//!    thread count);
//! 3. its events must not race the global sink: unbuffered workers
//!    contend on the sink mutex and interleave nondeterministically.
//!
//! [`worker_context`] solves all three: it stamps a thread id, pushes
//! the parent span path as the root of this thread's span stack, and
//! (optionally) redirects every [`crate::emit`] on this thread into a
//! thread-local buffer. The pool takes the buffer back with
//! [`WorkerContext::take_buffered`] and replays the batches **in
//! worker-index order** after the join, so a parallel trace is ordered
//! exactly like the serial one.

use crate::event::Event;
use crate::span::SPAN_STACK;
use std::cell::{Cell, RefCell};

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static BUFFER: RefCell<Option<Vec<Event>>> = const { RefCell::new(None) };
}

/// The current thread's telemetry attribution id (`0` = main thread or
/// any thread outside a [`worker_context`]).
pub fn thread_id() -> u64 {
    THREAD_ID.with(Cell::get)
}

/// The innermost recording span path on this thread, `None` outside any
/// span. This is what a pool captures before spawning so workers can
/// inherit it.
pub fn current_span_path() -> Option<String> {
    SPAN_STACK.with(|stack| stack.borrow().last().cloned())
}

/// Intercepts an event into this thread's buffer; `false` means no
/// buffer is active and the caller should emit to the sink.
pub(crate) fn buffer_push(event: &Event) -> bool {
    BUFFER.with(|b| {
        if let Some(buf) = b.borrow_mut().as_mut() {
            buf.push(event.clone());
            true
        } else {
            false
        }
    })
}

/// Intercepts a whole batch into this thread's buffer; `false` means no
/// buffer is active. Used by [`crate::emit_batch`] so a nested pool
/// (a `par_map` inside a worker) feeds the *outer* worker's buffer
/// instead of racing the sink.
pub(crate) fn buffer_extend(events: &[Event]) -> bool {
    BUFFER.with(|b| {
        if let Some(buf) = b.borrow_mut().as_mut() {
            buf.extend(events.iter().cloned());
            true
        } else {
            false
        }
    })
}

/// A live worker telemetry context; restores the previous thread state
/// on drop. See [`worker_context`].
#[must_use = "the context applies for exactly the scope it is bound to"]
pub struct WorkerContext {
    prev_id: u64,
    pushed_path: bool,
    buffering: bool,
    prev_buffer: Option<Vec<Event>>,
}

/// Enters a worker context on the current thread:
///
/// * events created here carry `thread = id`;
/// * when `parent_path` is given, it becomes the root of this thread's
///   span stack, so new spans nest under the spawning call site;
/// * when `buffer` is set, events emitted on this thread are captured
///   instead of sent — drain them with [`WorkerContext::take_buffered`]
///   and replay through [`crate::emit_batch`] in a deterministic order.
///
/// Contexts nest (a serial `par_map` fallback inside a worker enters a
/// second context on the same thread): the drop restores the previous
/// thread id and buffer.
pub fn worker_context(id: u64, parent_path: Option<&str>, buffer: bool) -> WorkerContext {
    let prev_id = THREAD_ID.with(|t| t.replace(id));
    let pushed_path = if let Some(path) = parent_path {
        SPAN_STACK.with(|stack| stack.borrow_mut().push(path.to_string()));
        true
    } else {
        false
    };
    let prev_buffer = if buffer {
        BUFFER.with(|b| b.borrow_mut().replace(Vec::new()))
    } else {
        None
    };
    WorkerContext {
        prev_id,
        pushed_path,
        buffering: buffer,
        prev_buffer,
    }
}

impl WorkerContext {
    /// Drains the events buffered on this thread so far (empty when the
    /// context does not buffer).
    pub fn take_buffered(&mut self) -> Vec<Event> {
        if !self.buffering {
            return Vec::new();
        }
        BUFFER.with(|b| {
            b.borrow_mut()
                .as_mut()
                .map(std::mem::take)
                .unwrap_or_default()
        })
    }
}

impl Drop for WorkerContext {
    fn drop(&mut self) {
        THREAD_ID.with(|t| t.set(self.prev_id));
        if self.pushed_path {
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
        if self.buffering {
            // Anything not taken is discarded deliberately: an abandoned
            // buffer belongs to an abandoned batch (worker panic path),
            // and flushing it here would race the join-ordered replay.
            // The *previous* buffer (outer nested context) is restored.
            let prev = self.prev_buffer.take();
            BUFFER.with(|b| *b.borrow_mut() = prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Level};

    #[test]
    fn context_sets_and_restores_thread_state() {
        assert_eq!(thread_id(), 0);
        {
            let mut ctx = worker_context(7, Some("root.span"), true);
            assert_eq!(thread_id(), 7);
            assert_eq!(current_span_path().as_deref(), Some("root.span"));
            let e = Event::new("ctx.test", EventKind::Event, Level::Info);
            assert_eq!(e.thread, 7);
            assert!(buffer_push(&e), "buffer must capture");
            let drained = ctx.take_buffered();
            assert_eq!(drained.len(), 1);
            assert_eq!(drained[0].name, "ctx.test");
            assert!(ctx.take_buffered().is_empty(), "drain is destructive");
        }
        assert_eq!(thread_id(), 0);
        assert_eq!(current_span_path(), None);
        let e = Event::new("ctx.test", EventKind::Event, Level::Info);
        assert!(!buffer_push(&e), "no buffer outside the context");
    }
}
