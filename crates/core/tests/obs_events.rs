//! End-to-end telemetry contract: fitting and serving an EA-DRL model
//! with a ring-buffer sink installed must produce the documented event
//! stream (one `ddpg.episode` per configured episode, an `eadrl.fit`
//! span, per-step `eadrl.weights` vectors).

use eadrl_core::{EaDrl, EaDrlConfig};
use eadrl_models::{auto_regressive, Forecaster, Naive, SeasonalNaive};
use eadrl_obs::{EventKind, Level, NoopSink, RingSink, Value};
use std::sync::Arc;

fn seasonal_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 5.0 + 20.0)
        .collect()
}

fn tiny_pool() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(Naive),
        Box::new(SeasonalNaive::new(12)),
        Box::new(auto_regressive(5, 1e-3)),
    ]
}

#[test]
fn fit_and_predict_emit_the_documented_event_stream() {
    let sink = Arc::new(RingSink::new(65_536));
    eadrl_obs::set_sink(sink.clone());
    eadrl_obs::set_level(Some(Level::Debug));

    let mut config = EaDrlConfig {
        omega: 6,
        episodes: 10,
        max_iter: 40,
        restarts: 1,
        ..Default::default()
    };
    config.ddpg.seed = 17;
    let episodes = config.episodes;
    let restarts = config.restarts;

    let series = seasonal_series(300);
    let mut model = EaDrl::new(tiny_pool(), config);
    model.fit(&series[..240]).unwrap();
    let _ = model.forecast(&series[..240], 5);

    eadrl_obs::set_level(None);
    eadrl_obs::set_sink(Arc::new(NoopSink));

    // ≥ 1 ddpg.episode event per configured episode (restarts multiply).
    let episode_events: Vec<_> = sink
        .events_named("ddpg.episode")
        .into_iter()
        .filter(|e| e.kind == EventKind::Event)
        .collect();
    assert!(
        episode_events.len() >= episodes * restarts,
        "expected >= {} ddpg.episode events, got {}",
        episodes * restarts,
        episode_events.len()
    );
    for e in &episode_events {
        assert!(matches!(e.get("avg_reward"), Some(Value::F64(v)) if v.is_finite()));
    }

    // The fit span closed and reported a duration.
    let fit_spans: Vec<_> = sink
        .events()
        .into_iter()
        .filter(|e| e.kind == EventKind::Span && e.name == "eadrl.fit")
        .collect();
    assert_eq!(fit_spans.len(), 1, "exactly one eadrl.fit span");
    assert!(matches!(
        fit_spans[0].get("duration_us"),
        Some(Value::U64(_))
    ));

    // Span paths nest: the episode spans ran inside eadrl.fit.
    assert!(
        sink.events()
            .iter()
            .any(|e| e.kind == EventKind::Span && e.name.contains("eadrl.fit/")),
        "span hierarchy must nest under eadrl.fit"
    );

    // Selection and pool bookkeeping happened.
    assert_eq!(sink.events_named("eadrl.selection").len(), 1);
    assert_eq!(sink.events_named("eadrl.fit.pool").len(), 1);
    assert!(sink.events_named("eadrl.restart").len() >= restarts);

    // Serving: one weights vector and one predict_next span per step.
    let weight_events = sink.events_named("eadrl.weights");
    assert!(weight_events.len() >= 5, "5 forecast steps emit weights");
    for e in weight_events.iter().rev().take(5) {
        let Some(Value::F64s(w)) = e.get("weights") else {
            panic!("weights field missing: {e:?}");
        };
        assert_eq!(w.len(), model.n_models());
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(matches!(e.get("entropy"), Some(Value::F64(v)) if v.is_finite()));
    }
    let predict_spans: Vec<_> = sink
        .events_named("eadrl.predict_next")
        .into_iter()
        .filter(|e| e.kind == EventKind::Span)
        .collect();
    assert!(predict_spans.len() >= 5, "predict_next spans per step");

    // Prediction latency landed in the global histogram.
    assert!(eadrl_obs::histogram("eadrl.predict_next.duration_us").count() >= 5);
}
