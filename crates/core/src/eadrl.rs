//! The EA-DRL model: offline policy learning, online forecasting
//! (Algorithm 1 of the paper).

use crate::combiner::Combiner;
use crate::env::{normalize_window, EnsembleEnv, RewardKind};
use crate::guard::{renormalize_over_active, GuardConfig, PoolGuard};
use crate::persist::PolicySnapshot;
use eadrl_linalg::vector::dot;
use eadrl_models::{fallback_forecast, Forecaster, ModelError};
use eadrl_obs::Level;
use eadrl_rl::{ActionSquash, DdpgAgent, DdpgConfig, EpisodeStats, SamplingStrategy, UpdatePath};
use eadrl_timeseries::sanitize::sanitize_series;
use eadrl_timeseries::window::SlideWindow;

/// Shannon entropy of a weight vector (natural log) — 0 for a one-hot
/// weighting, `ln m` for the uniform one. A telemetry-facing summary of
/// how concentrated the ensemble currently is.
pub fn weight_entropy(weights: &[f64]) -> f64 {
    weights
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| -w * w.ln())
        .sum()
}

/// What advances the policy's state window online.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineState {
    /// The window advances with the ensemble's own outputs — identical to
    /// the training-time MDP transition (§II-B), so the online state
    /// distribution matches what the policy was trained on. Default.
    EnsembleOutputs,
    /// The window advances with realized values when available (§II-E's
    /// "let state s be X^ω"), falling back to ensemble outputs in
    /// recursive multi-step forecasting.
    Observed,
}

/// Hyper-parameters of EA-DRL.
///
/// Defaults follow the paper's reported model selection: window ω = 10,
/// discount γ = 0.9, learning rate α = 0.01, `max.ep` = `max.iter` = 100,
/// rank reward (Eq. 3) and median-split diversity replay sampling (Eq. 4).
#[derive(Debug, Clone)]
pub struct EaDrlConfig {
    /// State window length ω.
    pub omega: usize,
    /// Training episodes (`max.ep`).
    pub episodes: usize,
    /// Maximum environment steps per episode (`max.iter`).
    pub max_iter: usize,
    /// Reward definition.
    pub reward: RewardKind,
    /// Fraction of the training series held out as the policy-learning
    /// validation segment.
    pub val_fraction: f64,
    /// Independent training restarts; the actor with the best greedy
    /// validation RMSE across all restarts is kept (the paper tunes
    /// EA-DRL "by model selection" — this is that selection).
    pub restarts: usize,
    /// Informed actor initialization: start the policy at the
    /// performance-based weighting `softmax(-T · e_i / min_j e_j)` over the
    /// validation errors `e_i` (T = `init_temperature`), by setting the
    /// actor's output bias. DDPG then refines the weighting and adds the
    /// state dependence. Cold starts must otherwise discover a 43-way
    /// concentrated weight vector from undirected noise — a needle-in-a-
    /// haystack exploration problem on short validation segments.
    pub informed_init: bool,
    /// Sharpness of the informed initialization (higher = more mass on the
    /// validation-best models).
    pub init_temperature: f64,
    /// Online state-window semantics.
    pub online_state: OnlineState,
    /// Optional pool pruning before policy learning — the paper's §III-B
    /// future-work hook ("incorporate a pruning step into our framework,
    /// so that only relevant models take part in the weighting"). When
    /// set, only this fraction of the pool (the most accurate members on
    /// the validation segment) takes part in the combination; the rest
    /// are discarded after fitting.
    pub prune_fraction: Option<f64>,
    /// Greedy-rollout evaluation cadence (episodes) for checkpointing.
    pub eval_every: usize,
    /// Fraction of the validation segment held out from the training
    /// environment and used *only* to score checkpoints. Selecting on data
    /// the policy trained on promotes overfit checkpoints; this tail
    /// measures generalization.
    pub selection_holdout: f64,
    /// Relative holdout-RMSE improvement a *trained* checkpoint must show
    /// over the best static candidate to be deployed. Trained checkpoints
    /// get many more selection attempts than the handful of static
    /// candidates, so without a margin the winner's curse lets noisy
    /// checkpoints displace robust static weightings.
    pub selection_margin: f64,
    /// Graceful-degradation policy for the online serving path (per-model
    /// `catch_unwind`, non-finite masking, quarantine/re-entry) — see
    /// [`crate::guard`].
    pub guard: GuardConfig,
    /// Underlying DDPG configuration (γ, learning rates, sampling, nets).
    pub ddpg: DdpgConfig,
}

impl Default for EaDrlConfig {
    fn default() -> Self {
        EaDrlConfig {
            omega: 10,
            episodes: 50,
            max_iter: 100,
            reward: RewardKind::Rank { normalize: true },
            val_fraction: 0.25,
            restarts: 2,
            eval_every: 5,
            selection_holdout: 0.4,
            selection_margin: 0.08,
            informed_init: true,
            init_temperature: 8.0,
            online_state: OnlineState::EnsembleOutputs,
            prune_fraction: None,
            guard: GuardConfig::default(),
            ddpg: DdpgConfig {
                gamma: 0.9,
                actor_lr: 0.01,
                critic_lr: 0.01,
                tau: 0.01,
                batch_size: 32,
                buffer_capacity: 10_000,
                sampling: SamplingStrategy::Diversity,
                hidden: vec![32, 32],
                squash: ActionSquash::Softmax,
                noise_sigma: 0.3,
                actor_logit_reg: 1e-3,
                update_path: UpdatePath::Batched,
                seed: 0,
            },
        }
    }
}

/// The learned combination policy, usable as a [`Combiner`].
///
/// `warm_up` phrases the validation predictions as an [`EnsembleEnv`] and
/// trains the DDPG agent offline; afterwards `weights` is a single actor
/// forward pass — this is why the paper's online phase is cheap (Table III).
pub struct EaDrlPolicy {
    config: EaDrlConfig,
    agent: Option<DdpgAgent>,
    /// Unscaled window of recent ensemble outputs (state of §II-B).
    window: SlideWindow,
    last_weights: Vec<f64>,
    learning_curve: Vec<EpisodeStats>,
}

impl EaDrlPolicy {
    /// Creates an untrained policy.
    pub fn new(config: EaDrlConfig) -> Self {
        let window = SlideWindow::new(config.omega.max(1));
        EaDrlPolicy {
            config,
            agent: None,
            window,
            last_weights: Vec::new(),
            learning_curve: Vec::new(),
        }
    }

    /// Per-episode average rewards from the offline training phase — the
    /// learning curve plotted in the paper's Figure 2.
    pub fn learning_curve(&self) -> &[EpisodeStats] {
        &self.learning_curve
    }

    /// The configuration in use.
    pub fn config(&self) -> &EaDrlConfig {
        &self.config
    }

    /// True once `warm_up` has trained the agent.
    pub fn is_trained(&self) -> bool {
        self.agent.is_some()
    }

    /// Captures the deployed actor for persistence; `None` before training.
    pub fn snapshot(&mut self) -> Option<PolicySnapshot> {
        let omega = self.config.omega;
        let window = self.window.to_vec();
        let agent = self.agent.as_mut()?;
        Some(PolicySnapshot {
            omega,
            action_dim: agent.action_dim(),
            hidden: agent.config().hidden.clone(),
            squash: agent.config().squash,
            params: agent.actor_params(),
            window,
        })
    }

    /// Rebuilds a deployable policy from a snapshot. The snapshot's
    /// topology (ω, hidden sizes, squash) overrides the corresponding
    /// fields of `config`; everything else (e.g. online-state semantics)
    /// comes from `config`.
    pub fn restore(mut config: EaDrlConfig, snapshot: &PolicySnapshot) -> EaDrlPolicy {
        config.omega = snapshot.omega;
        config.ddpg.hidden = snapshot.hidden.clone();
        config.ddpg.squash = snapshot.squash;
        let mut agent = DdpgAgent::new(snapshot.omega, snapshot.action_dim, config.ddpg.clone());
        agent.load_actor_params(&snapshot.params);
        let mut window = SlideWindow::new(config.omega.max(1));
        window.assign(&snapshot.window);
        EaDrlPolicy {
            config,
            agent: Some(agent),
            window,
            last_weights: Vec::new(),
            learning_curve: Vec::new(),
        }
    }

    fn scaled_state(&self) -> Option<Vec<f64>> {
        if self.window.len() < self.config.omega {
            return None;
        }
        Some(normalize_window(
            &self.window[self.window.len() - self.config.omega..],
        ))
    }

    fn push_output(&mut self, value: f64) {
        self.window.slide(value);
    }

    /// Advances the state window with the ensemble value actually served.
    ///
    /// The degraded serving path uses this instead of
    /// [`Combiner::observe`]: under masking the served value is a
    /// renormalized combination over the surviving members, which the
    /// raw-weight dot product inside `observe` would not reproduce.
    pub(crate) fn observe_served(&mut self, served: f64) {
        self.push_output(served);
    }

    /// Continues training the deployed actor on a fresh validation
    /// segment — the warm-start path of the online refresh.
    ///
    /// Where `warm_up` spawns fresh restarts, `refine` keeps the current
    /// actor (typically restored from a [`PolicySnapshot`] of the serving
    /// policy) and runs `episodes` additional training episodes against
    /// the new segment, with the same holdout split, checkpoint selection
    /// and static informed-weighting candidates. The untouched deployed
    /// actor competes as the episode-0 checkpoint, so on the holdout the
    /// refinement can only keep or improve the RMSE, never regress it.
    ///
    /// Returns `true` when the refinement ran (a trained agent and a
    /// long-enough segment with matching pool width); `false` leaves the
    /// policy exactly as it was, signalling the caller to fall back to a
    /// cold `warm_up`.
    pub fn refine(&mut self, preds: &[Vec<f64>], actuals: &[f64], episodes: usize) -> bool {
        let _span = eadrl_obs::span("eadrl.warm_up");
        let omega = self.config.omega;
        if actuals.len() <= omega + 1 || preds.is_empty() {
            eadrl_obs::warn(
                "eadrl.warm_up.skipped",
                &[("val_len", actuals.len().into()), ("omega", omega.into())],
            );
            return false;
        }
        let m = preds[0].len();
        let Some(mut agent) = self.agent.take() else {
            return false;
        };
        if agent.action_dim() != m {
            // The pool width changed under the deployed policy; the old
            // actor cannot score this matrix.
            self.agent = Some(agent);
            return false;
        }
        let holdout = self.config.selection_holdout.clamp(0.0, 0.6);
        let head_len = ((preds.len() as f64) * (1.0 - holdout)).round() as usize;
        let head_len = head_len.clamp(omega + 2, preds.len());
        let mut env = EnsembleEnv::new(
            preds[..head_len].to_vec(),
            actuals[..head_len].to_vec(),
            omega,
            self.config.reward,
            self.config.max_iter,
        );
        let cadence = self.config.eval_every.max(1);
        let init_score = greedy_rollout_rmse(&agent, preds, actuals, omega, head_len);
        let mut best = (init_score, agent.actor_params());
        let mut best_source = String::from("snapshot");
        // The static candidates derisk the refinement exactly as they
        // derisk the offline warm-up: the informed weighting, recomputed
        // on the fresh segment, competes with the untouched and the
        // refined actor on the same holdout. They cost four greedy
        // rollouts — no training episodes.
        if self.config.informed_init {
            for temperature in [3.0, 6.0, 10.0, 15.0] {
                let mut candidate = DdpgAgent::new(omega, m, self.config.ddpg.clone());
                let bias = informed_logits(preds, actuals, temperature, self.config.ddpg.squash);
                candidate.init_actor_output_bias(&bias);
                let score = greedy_rollout_rmse(&candidate, preds, actuals, omega, head_len);
                eadrl_obs::event(
                    "eadrl.candidate",
                    Level::Debug,
                    &[
                        ("temperature", temperature.into()),
                        ("holdout_rmse", score.into()),
                    ],
                );
                if score < best.0 {
                    best = (score, candidate.actor_params());
                    best_source = format!("static(T={temperature})");
                }
            }
        }
        let mut curve = Vec::with_capacity(episodes);
        for episode in 0..episodes {
            curve.push(agent.run_episode(&mut env, true));
            if (episode + 1) % cadence == 0 || episode + 1 == episodes {
                let score = greedy_rollout_rmse(&agent, preds, actuals, omega, head_len);
                if score < best.0 {
                    best = (score, agent.actor_params());
                    best_source = String::from("warm_start");
                }
            }
        }
        self.learning_curve = curve;
        eadrl_obs::event(
            "eadrl.selection",
            Level::Info,
            &[
                ("source", best_source.as_str().into()),
                ("holdout_rmse", best.0.into()),
                ("deployed", true.into()),
            ],
        );
        agent.load_actor_params(&best.1);
        self.agent = Some(agent);
        self.window.assign(&actuals[actuals.len() - omega..]);
        true
    }
}

impl Combiner for EaDrlPolicy {
    fn name(&self) -> &str {
        "EA-DRL"
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        let _span = eadrl_obs::span("eadrl.warm_up");
        let omega = self.config.omega;
        if actuals.len() <= omega + 1 || preds.is_empty() {
            eadrl_obs::warn(
                "eadrl.warm_up.skipped",
                &[("val_len", actuals.len().into()), ("omega", omega.into())],
            );
            return; // Too little data to train; stay uniform.
        }
        let m = preds[0].len();
        // Split the validation segment: the head trains the policy, the
        // tail scores checkpoints (generalization-based model selection).
        let holdout = self.config.selection_holdout.clamp(0.0, 0.6);
        let head_len = ((preds.len() as f64) * (1.0 - holdout)).round() as usize;
        let head_len = head_len.clamp(omega + 2, preds.len());
        // Model selection: several independent DDPG trainings, with the
        // actor checkpointed at its best greedy RMSE on the held-out tail.
        // DDPG's performance oscillates between episodes, so "last actor"
        // is routinely worse than "best actor seen".
        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut best_source = String::from("none");
        let mut selected_agent = None;
        // Static candidates: the informed weighting at several sharpness
        // levels, each expressed as an actor whose output bias encodes the
        // weighting. These derisk the RL training — if no trained
        // checkpoint beats the best static weighting on the holdout, EA-DRL
        // deploys that weighting (still a policy network, still Algorithm 1).
        if self.config.informed_init {
            for temperature in [3.0, 6.0, 10.0, 15.0] {
                let mut agent = DdpgAgent::new(omega, m, self.config.ddpg.clone());
                let bias = informed_logits(preds, actuals, temperature, self.config.ddpg.squash);
                agent.init_actor_output_bias(&bias);
                let score = greedy_rollout_rmse(&agent, preds, actuals, omega, head_len);
                eadrl_obs::event(
                    "eadrl.candidate",
                    Level::Debug,
                    &[
                        ("temperature", temperature.into()),
                        ("holdout_rmse", score.into()),
                    ],
                );
                if best.as_ref().is_none_or(|(b, _)| score < *b) {
                    best = Some((score, agent.actor_params()));
                    best_source = format!("static(T={temperature})");
                    selected_agent = Some(agent);
                }
            }
        }
        self.learning_curve.clear();
        // Each restart is a pure function of its index (the DDPG seed is
        // derived from it), so the restarts fan out over the deterministic
        // worker pool: static index-ordered chunks, per-worker telemetry
        // buffered and flushed in restart order after the join (so the
        // trace reads exactly like the old serial loop), and the merge
        // below walks the results in restart order — winner selection is
        // bitwise identical at every `EADRL_PAR_THREADS`.
        let config = &self.config;
        let restart_results = eadrl_par::par_map_indexed(
            (0..config.restarts.max(1)).collect::<Vec<usize>>(),
            |_, restart| {
                let mut env = EnsembleEnv::new(
                    preds[..head_len].to_vec(),
                    actuals[..head_len].to_vec(),
                    omega,
                    config.reward,
                    config.max_iter,
                );
                let mut ddpg = config.ddpg.clone();
                ddpg.seed = ddpg.seed.wrapping_add(1000 * restart as u64);
                let squash = ddpg.squash;
                let mut agent = DdpgAgent::new(omega, m, ddpg);
                if config.informed_init {
                    let bias = informed_logits(preds, actuals, config.init_temperature, squash);
                    agent.init_actor_output_bias(&bias);
                }
                let mut curve = Vec::with_capacity(config.episodes);
                let cadence = config.eval_every.max(1);
                // Episode-0 checkpoint: the informed initialization itself
                // competes in the selection.
                let init_score = greedy_rollout_rmse(&agent, preds, actuals, omega, head_len);
                let mut restart_best = (init_score, agent.actor_params());
                for episode in 0..config.episodes {
                    curve.push(agent.run_episode(&mut env, true));
                    if (episode + 1) % cadence == 0 || episode + 1 == config.episodes {
                        let score = greedy_rollout_rmse(&agent, preds, actuals, omega, head_len);
                        if score < restart_best.0 {
                            restart_best = (score, agent.actor_params());
                        }
                    }
                }
                eadrl_obs::event(
                    "eadrl.restart",
                    Level::Info,
                    &[
                        ("restart", restart.into()),
                        ("init_rmse", init_score.into()),
                        ("holdout_rmse", restart_best.0.into()),
                    ],
                );
                (curve, restart_best, agent)
            },
        );
        // A restart that panics must surface as a panic here — the online
        // refresh path wraps warm_up in catch_unwind and relies on that
        // contract for its bounded-retry recovery. `resume_unwind`
        // re-raises the worker's own panic (caught at the par boundary
        // only to preserve merge ordering) instead of originating a new
        // one, so callers observe the same unwind the serial loop raised.
        let restart_results = match restart_results {
            Ok(results) => results,
            Err(err) => std::panic::resume_unwind(Box::new(err.to_string())),
        };
        for (restart, (curve, (score, params), mut agent)) in
            restart_results.into_iter().enumerate()
        {
            // The learning curve documents the (first restart's) training
            // run regardless of which candidate is deployed.
            if self.learning_curve.is_empty() {
                self.learning_curve = curve;
            }
            let margin = 1.0 - self.config.selection_margin.clamp(0.0, 0.5);
            if best.as_ref().is_none_or(|(b, _)| score < *b * margin) {
                agent.load_actor_params(&params);
                best = Some((score, params));
                best_source = format!("restart({restart})");
                selected_agent = Some(agent);
            }
        }
        if let Some(agent) = selected_agent {
            self.agent = Some(agent);
        }
        eadrl_obs::event(
            "eadrl.selection",
            Level::Info,
            &[
                ("source", best_source.as_str().into()),
                (
                    "holdout_rmse",
                    best.as_ref().map(|(s, _)| *s).unwrap_or(f64::NAN).into(),
                ),
                ("deployed", self.agent.is_some().into()),
            ],
        );
        // Seed the online window with the latest actual values.
        self.window.assign(&actuals[actuals.len() - omega..]);
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        let w = match (&self.agent, self.scaled_state()) {
            (Some(agent), Some(state)) => agent.act(&state),
            _ => vec![1.0 / m as f64; m],
        };
        self.last_weights.clear();
        self.last_weights.extend_from_slice(&w);
        eadrl_obs::event_with("eadrl.weights", Level::Debug, || {
            vec![
                ("weights".to_string(), w.as_slice().into()),
                ("entropy".to_string(), weight_entropy(&w).into()),
                ("trained".to_string(), self.agent.is_some().into()),
            ]
        });
        w
    }

    fn observe(&mut self, preds: &[f64], actual: f64) {
        // With `OnlineState::Observed` (§II-E's reading) the realized
        // value advances the window when available; the default
        // `EnsembleOutputs` matches the training-time transition (§II-B),
        // which keeps the online state distribution in-domain for the
        // policy network and measures slightly better end-to-end.
        if self.config.online_state == OnlineState::Observed && actual.is_finite() {
            self.push_output(actual);
            return;
        }
        // The cached weighting is read in place — no per-step clone. The
        // uniform fallback multiplies each prediction by the same
        // `1.0 / m` factor a materialized uniform vector would hold, in
        // `dot`'s summation order, so the result is bitwise unchanged.
        let ens = if self.last_weights.len() == preds.len() {
            dot(&self.last_weights, preds)
        } else {
            let u = 1.0 / preds.len() as f64;
            preds.iter().map(|p| u * p).sum()
        };
        self.push_output(ens);
    }
}

/// Raw-logit targets for the informed actor initialization: per-model
/// validation RMSEs are mapped to `z_i = -T · e_i / min_j e_j`, centered,
/// and inverted through the squash so that `squash(z_raw) = softmax(z)`.
fn informed_logits(
    preds: &[Vec<f64>],
    actuals: &[f64],
    temperature: f64,
    squash: ActionSquash,
) -> Vec<f64> {
    let m = preds[0].len();
    let mut sse = vec![0.0; m];
    for (p, &a) in preds.iter().zip(actuals.iter()) {
        for (s, &v) in sse.iter_mut().zip(p.iter()) {
            let e = v - a;
            *s += e * e;
        }
    }
    let errs: Vec<f64> = sse
        .iter()
        .map(|s| (s / preds.len().max(1) as f64).sqrt())
        .collect();
    let best = errs
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min)
        .max(1e-12);
    let mut z: Vec<f64> = errs.iter().map(|e| -temperature * e / best).collect();
    let mean = z.iter().sum::<f64>() / m as f64;
    for v in z.iter_mut() {
        *v -= mean;
    }
    match squash {
        ActionSquash::BoundedSoftmax { scale } => {
            // Invert softmax(scale·tanh(raw)) = softmax(z): raw = atanh(z/scale).
            // When the target logits exceed the representable band, rescale
            // them affinely (clamping would flatten the ordering among the
            // best models, which is exactly the resolution that matters).
            let band = 0.95 * scale;
            let max_abs = z.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            if max_abs > band {
                let f = band / max_abs;
                for v in z.iter_mut() {
                    *v *= f;
                }
            }
            z.iter()
                .map(|&v| {
                    let r = (v / scale).clamp(-0.999, 0.999);
                    0.5 * ((1.0 + r) / (1.0 - r)).ln()
                })
                .collect()
        }
        // Plain softmax (and anything else): the logits pass through.
        _ => z,
    }
}

/// RMSE of the greedy (noise-free) policy replayed over the validation
/// segment, advancing the state window with the ensemble's own outputs.
/// The rollout starts at `omega` (so the window is well-formed), but only
/// the steps at or beyond `score_from` count toward the returned RMSE —
/// pass the training/holdout boundary to score generalization only.
fn greedy_rollout_rmse(
    agent: &DdpgAgent,
    preds: &[Vec<f64>],
    actuals: &[f64],
    omega: usize,
    score_from: usize,
) -> f64 {
    let mut window = SlideWindow::new(omega);
    window.assign(&actuals[..omega]);
    let mut out = Vec::new();
    let mut truth = Vec::new();
    for t in omega..actuals.len() {
        let state = normalize_window(&window);
        let w = agent.act(&state);
        let ens: f64 = preds[t].iter().zip(w.iter()).map(|(p, wi)| p * wi).sum();
        if t >= score_from.min(actuals.len().saturating_sub(1)) {
            out.push(ens);
            truth.push(actuals[t]);
        }
        window.slide(ens);
    }
    eadrl_timeseries::metrics::rmse(&truth, &out)
}

/// The complete EA-DRL forecaster: a pool of heterogeneous base models plus
/// the learned aggregation policy.
pub struct EaDrl {
    pool: Vec<Box<dyn Forecaster>>,
    dropped: Vec<String>,
    policy: EaDrlPolicy,
    guard: PoolGuard,
    fitted: bool,
}

impl EaDrl {
    /// Creates an EA-DRL model over the given base-model pool.
    ///
    /// # Panics
    /// Panics on an empty pool.
    pub fn new(pool: Vec<Box<dyn Forecaster>>, config: EaDrlConfig) -> Self {
        assert!(!pool.is_empty(), "EA-DRL needs a non-empty model pool");
        let guard = PoolGuard::new(config.guard.clone(), pool.len());
        EaDrl {
            pool,
            dropped: Vec::new(),
            policy: EaDrlPolicy::new(config),
            guard,
            fitted: false,
        }
    }

    /// Fits the pool and learns the combination policy offline.
    ///
    /// The training series is split `1 - val_fraction` / `val_fraction`;
    /// base models fit on the prefix, their rolling one-step predictions
    /// over the suffix become the policy-learning environment. Pool members
    /// that cannot fit (series too short for their configuration) are
    /// dropped and reported via [`EaDrl::dropped_models`].
    pub fn fit(&mut self, train: &[f64]) -> Result<(), ModelError> {
        let _span = eadrl_obs::span("eadrl.fit");
        // Repair gaps/non-finite values before any model sees the series
        // (forward-fill policy — see `eadrl_timeseries::sanitize`). A
        // fully non-finite series cannot be repaired meaningfully.
        let sanitized = sanitize_series(train);
        let train: &[f64] = match &sanitized {
            None => train,
            Some((fixed, stats)) => {
                eadrl_obs::event(
                    "eadrl.sanitize",
                    Level::Warn,
                    &[
                        ("context", "fit".into()),
                        ("replaced", stats.replaced.into()),
                        ("leading", stats.leading.into()),
                        ("len", stats.len.into()),
                    ],
                );
                if stats.replaced == stats.len {
                    return Err(ModelError::Numerical {
                        context: "training series has no finite values".into(),
                    });
                }
                fixed
            }
        };
        let val_fraction = self.policy.config.val_fraction.clamp(0.05, 0.5);
        let fit_len = ((train.len() as f64) * (1.0 - val_fraction)).round() as usize;
        let omega = self.policy.config.omega;
        if fit_len < 20 || train.len() - fit_len < omega + 2 {
            return Err(ModelError::SeriesTooShort {
                needed: 20 + omega + 2,
                got: train.len(),
            });
        }
        let (fit_part, val_part) = train.split_at(fit_len);

        // Fit the pool in parallel, dropping members the series cannot
        // support. Per-member fitting is independent (each model is
        // seeded by its own configuration), so the fan-out is bitwise
        // equivalent to the old serial loop at any thread count.
        self.dropped.clear();
        let (kept, dropped) = crate::parallel::fit_pool(std::mem::take(&mut self.pool), fit_part);
        self.dropped = dropped;
        if kept.is_empty() {
            return Err(ModelError::SeriesTooShort {
                needed: 20,
                got: train.len(),
            });
        }
        self.pool = kept;

        // Rolling one-step predictions over the validation suffix.
        let mut preds = self.validation_predictions(fit_part, val_part);
        crate::experiment::sanitize_predictions(&mut preds, fit_part);

        // Optional pruning (paper future work): keep only the fraction of
        // the pool that performed best on the validation segment.
        if let Some(fraction) = self.policy.config().prune_fraction {
            let keep = ((self.pool.len() as f64) * fraction.clamp(0.05, 1.0)).ceil() as usize;
            let keep = keep.clamp(1, self.pool.len());
            if keep < self.pool.len() {
                let m = self.pool.len();
                let mut sse = vec![0.0; m];
                for (p, &a) in preds.iter().zip(val_part.iter()) {
                    for (s, &v) in sse.iter_mut().zip(p.iter()) {
                        let e = v - a;
                        *s += e * e;
                    }
                }
                let mut order: Vec<usize> = (0..m).collect();
                order.sort_by(|&a, &b| {
                    sse[a]
                        .partial_cmp(&sse[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut selected = order[..keep].to_vec();
                selected.sort_unstable();
                let mut kept_models = Vec::with_capacity(keep);
                for (idx, model) in std::mem::take(&mut self.pool).into_iter().enumerate() {
                    if selected.contains(&idx) {
                        kept_models.push(model);
                    } else {
                        self.dropped.push(format!("{} (pruned)", model.name()));
                    }
                }
                self.pool = kept_models;
                preds = preds
                    .into_iter()
                    .map(|row| selected.iter().map(|&i| row[i]).collect())
                    .collect();
            }
        }

        eadrl_obs::event_with("eadrl.fit.pool", Level::Info, || {
            vec![
                ("kept".to_string(), self.pool.len().into()),
                ("dropped".to_string(), self.dropped.len().into()),
                ("dropped_names".to_string(), self.dropped.join(",").into()),
                ("train_len".to_string(), train.len().into()),
                ("val_len".to_string(), val_part.len().into()),
            ]
        });
        self.policy.warm_up(&preds, val_part);
        // Health tracking starts fresh for the (possibly pruned) pool.
        self.guard.reset(self.pool.len());
        self.fitted = true;
        Ok(())
    }

    fn validation_predictions(&self, fit_part: &[f64], val_part: &[f64]) -> Vec<Vec<f64>> {
        crate::parallel::prediction_matrix(&self.pool, fit_part, val_part)
    }

    /// One-step-ahead forecast given the observed history (Algorithm 1's
    /// inner step). Advances the policy's internal state window with the
    /// ensemble output.
    ///
    /// This is the hardened serving path: the input history is repaired
    /// (forward fill over gaps/non-finite values), every pool member runs
    /// under the degradation guard (`catch_unwind`, non-finite masking,
    /// quarantine — see [`crate::guard`]), and the returned forecast is
    /// finite whenever the history contains at least one finite value.
    /// On a fault-free step the arithmetic is identical, in order, to
    /// the unguarded loop, so clean runs stay byte-for-byte reproducible.
    pub fn predict_next(&mut self, history: &[f64]) -> f64 {
        let _span = eadrl_obs::span_at(Level::Debug, "eadrl.predict_next");
        let sanitized = sanitize_series(history);
        let history: &[f64] = match &sanitized {
            None => history,
            Some((fixed, stats)) => {
                eadrl_obs::event(
                    "eadrl.sanitize",
                    Level::Warn,
                    &[
                        ("context", "predict_history".into()),
                        ("replaced", stats.replaced.into()),
                        ("leading", stats.leading.into()),
                        ("len", stats.len.into()),
                    ],
                );
                fixed
            }
        };
        let sweep = self.guard.sweep(&self.pool, history);
        let w = self.policy.weights(self.pool.len());
        if sweep.all_active {
            // Fault-free fast path: bit-identical to the historical
            // unguarded combination (same dot, same observe).
            let ens = dot(&w, &sweep.values);
            self.policy.observe(&sweep.values, f64::NAN);
            return ens;
        }
        let effective = renormalize_over_active(&w, &sweep.active);
        let survivors = sweep.active.iter().filter(|&&a| a).count();
        let ens = if survivors == 0 {
            // Whole pool masked: degrade to the documented history
            // fallback rather than serving garbage.
            fallback_forecast(history)
        } else {
            dot(&effective, &sweep.values)
        };
        eadrl_obs::event_with("eadrl.degraded", Level::Warn, || {
            let faulted: Vec<f64> = sweep.faults.iter().map(|(i, _)| *i as f64).collect();
            let classes: Vec<String> = sweep
                .faults
                .iter()
                .map(|(_, c)| c.as_str().to_string())
                .collect();
            let quarantined: Vec<f64> =
                self.guard.quarantined().iter().map(|&i| i as f64).collect();
            vec![
                ("survivors".to_string(), survivors.into()),
                ("pool".to_string(), self.pool.len().into()),
                ("faulted".to_string(), faulted.as_slice().into()),
                ("classes".to_string(), classes.join(",").into()),
                ("quarantined".to_string(), quarantined.as_slice().into()),
                ("weights".to_string(), effective.as_slice().into()),
                ("forecast".to_string(), ens.into()),
            ]
        });
        self.policy.observe_served(ens);
        ens
    }

    /// Forecasts the next `n` values recursively (Algorithm 1): each
    /// prediction is appended to the working history before the next step.
    pub fn forecast(&mut self, history: &[f64], n: usize) -> Vec<f64> {
        let mut extended = history.to_vec();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = self.predict_next(&extended);
            extended.push(next);
            out.push(next);
        }
        out
    }

    /// The current ensemble weights (one actor forward pass).
    pub fn current_weights(&mut self) -> Vec<f64> {
        let m = self.pool.len();
        self.policy.weights(m)
    }

    /// Names of the (retained) pool members.
    pub fn model_names(&self) -> Vec<&str> {
        self.pool.iter().map(|m| m.name()).collect()
    }

    /// Pool members dropped at fit time (series too short for them).
    pub fn dropped_models(&self) -> &[String] {
        &self.dropped
    }

    /// Number of active base models.
    pub fn n_models(&self) -> usize {
        self.pool.len()
    }

    /// The offline learning curve (paper Figure 2).
    pub fn learning_curve(&self) -> &[EpisodeStats] {
        self.policy.learning_curve()
    }

    /// Immutable access to the learned policy.
    pub fn policy(&self) -> &EaDrlPolicy {
        &self.policy
    }

    /// Indices of pool members currently quarantined by the degradation
    /// guard (empty on a healthy pool).
    pub fn quarantined_models(&self) -> Vec<usize> {
        self.guard.quarantined()
    }

    /// Immutable access to the degradation guard's health state.
    pub fn guard(&self) -> &PoolGuard {
        &self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadrl_models::{auto_regressive, Naive, SeasonalNaive};

    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 5.0 + 20.0)
            .collect()
    }

    fn tiny_pool() -> Vec<Box<dyn Forecaster>> {
        vec![
            Box::new(Naive),
            Box::new(SeasonalNaive::new(12)),
            Box::new(auto_regressive(5, 1e-3)),
        ]
    }

    fn quick_config(seed: u64) -> EaDrlConfig {
        EaDrlConfig {
            omega: 6,
            episodes: 15,
            max_iter: 40,
            ..Default::default()
        }
        .with_seed(seed)
    }

    impl EaDrlConfig {
        fn with_seed(mut self, seed: u64) -> Self {
            self.ddpg.seed = seed;
            self
        }
    }

    #[test]
    fn fit_trains_policy_and_keeps_pool() {
        let series = seasonal_series(300);
        let mut model = EaDrl::new(tiny_pool(), quick_config(1));
        model.fit(&series[..240]).unwrap();
        assert_eq!(model.n_models(), 3);
        assert!(model.dropped_models().is_empty());
        assert!(model.policy().is_trained());
        assert_eq!(model.learning_curve().len(), 15);
    }

    #[test]
    fn weights_are_a_distribution() {
        let series = seasonal_series(300);
        let mut model = EaDrl::new(tiny_pool(), quick_config(2));
        model.fit(&series[..240]).unwrap();
        let w = model.current_weights();
        assert_eq!(w.len(), 3);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn one_step_forecast_is_reasonable() {
        let series = seasonal_series(300);
        let mut model = EaDrl::new(tiny_pool(), quick_config(3));
        model.fit(&series[..240]).unwrap();
        let pred = model.predict_next(&series[..240]);
        let truth = series[240];
        // The pool contains a seasonal-naive member that is near-exact, so
        // any sensible weighting lands close.
        assert!((pred - truth).abs() < 5.0, "pred {pred} truth {truth}");
    }

    #[test]
    fn multi_step_forecast_has_right_length_and_stays_finite() {
        let series = seasonal_series(300);
        let mut model = EaDrl::new(tiny_pool(), quick_config(4));
        model.fit(&series[..240]).unwrap();
        let preds = model.forecast(&series[..240], 20);
        assert_eq!(preds.len(), 20);
        assert!(preds.iter().all(|p| p.is_finite()));
        // Stays within a sane band around the series level.
        assert!(preds.iter().all(|p| (*p - 20.0).abs() < 15.0));
    }

    #[test]
    fn unfit_pool_members_are_dropped() {
        let mut pool = tiny_pool();
        // A seasonal-naive with an absurd period cannot fit on 240 points.
        pool.push(Box::new(SeasonalNaive::new(100_000)));
        let series = seasonal_series(300);
        let mut model = EaDrl::new(pool, quick_config(5));
        model.fit(&series[..240]).unwrap();
        assert_eq!(model.n_models(), 3);
        assert_eq!(model.dropped_models().len(), 1);
    }

    #[test]
    fn too_short_series_is_error() {
        let mut model = EaDrl::new(tiny_pool(), quick_config(6));
        assert!(model.fit(&seasonal_series(25)).is_err());
    }

    #[test]
    fn untrained_policy_is_uniform() {
        let mut policy = EaDrlPolicy::new(EaDrlConfig::default());
        assert!(!policy.is_trained());
        let w = policy.weights(4);
        assert_eq!(w, vec![0.25; 4]);
    }

    #[test]
    fn pruning_shrinks_the_pool_to_the_best_members() {
        let series = seasonal_series(320);
        // Pool: two sensible models plus a hopeless constant-zero one.
        #[derive(Debug, Clone)]
        struct Zero;
        impl Forecaster for Zero {
            fn name(&self) -> &str {
                "Zero"
            }
            fn fit(&mut self, _s: &[f64]) -> Result<(), eadrl_models::ModelError> {
                Ok(())
            }
            fn predict_next(&self, _h: &[f64]) -> f64 {
                0.0
            }
            fn box_clone(&self) -> Box<dyn Forecaster> {
                Box::new(self.clone())
            }
        }
        let mut pool = tiny_pool();
        pool.push(Box::new(Zero));
        let mut config = quick_config(8);
        config.prune_fraction = Some(0.5); // keep ceil(4 * 0.5) = 2 models
        let mut model = EaDrl::new(pool, config);
        model.fit(&series[..260]).unwrap();
        assert_eq!(model.n_models(), 2);
        assert!(
            model.dropped_models().iter().any(|n| n.contains("Zero")),
            "the hopeless model must be pruned: {:?}",
            model.dropped_models()
        );
        // Weights still form a distribution over the pruned pool.
        let w = model.current_weights();
        assert_eq!(w.len(), 2);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_restore_reproduces_the_policy_exactly() {
        let series = seasonal_series(300);
        let mut pool = tiny_pool();
        for m in pool.iter_mut() {
            m.fit(&series[..200]).unwrap();
        }
        // Train a policy through the combiner interface.
        let preds: Vec<Vec<f64>> = (200..260)
            .map(|t| pool.iter().map(|m| m.predict_next(&series[..t])).collect())
            .collect();
        let actuals = series[200..260].to_vec();
        let mut original = EaDrlPolicy::new(quick_config(3));
        original.warm_up(&preds, &actuals);
        assert!(original.is_trained());

        let snap = original.snapshot().expect("trained policy snapshots");
        let mut buf = Vec::new();
        snap.write(&mut buf).unwrap();
        let back = crate::persist::PolicySnapshot::read(buf.as_slice()).unwrap();
        let mut restored = EaDrlPolicy::restore(quick_config(3), &back);

        // Same weights now, and same weights after identical observations.
        assert_eq!(original.weights(3), restored.weights(3));
        for (p, &a) in preds.iter().zip(actuals.iter()) {
            original.observe(p, a);
            restored.observe(p, a);
        }
        assert_eq!(original.weights(3), restored.weights(3));
    }

    #[test]
    fn untrained_policy_has_no_snapshot() {
        let mut policy = EaDrlPolicy::new(EaDrlConfig::default());
        assert!(policy.snapshot().is_none());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pool_panics() {
        let _ = EaDrl::new(Vec::new(), EaDrlConfig::default());
    }
}
