// Fixture: obs-event-schema. Linted with the pretend path
// `crates/core/src/fixture.rs` against the schema
// {eadrl.fit, eadrl.weights, eadrl.*.skipped, bench.dataset}.

pub fn emits() {
    eadrl_obs::event("eadrl.fit", Level::Info, &[]);
    eadrl_obs::event("eadrl.typo", Level::Info, &[]); //~ obs-event-schema
    eadrl_obs::warn("eadrl.warm_up.skipped", &[]);
    eadrl_obs::event_with("eadrl.online.refresh.skipped", || vec![]);
    let _a = eadrl_obs::span_at(Level::Debug, "bench.dataset");
    let _b = eadrl_obs::span("nope.event"); //~ obs-event-schema
    other_mod::event("not.obs.not.checked", 1);
}

pub fn suppressed() {
    // eadrl-lint: allow(obs-event-schema): fixture-only name, never emitted in production
    eadrl_obs::event("fixture.only", Level::Info, &[]);
}

#[cfg(test)]
mod tests {
    #[test]
    fn undocumented_names_in_tests_are_fine() {
        eadrl_obs::event("test.scratch.name", Level::Info, &[]);
    }
}
