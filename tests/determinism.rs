//! Reproducibility: the entire pipeline is a pure function of its seeds.

use eadrl::core::{EaDrl, EaDrlConfig};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::{quick_pool, standard_pool};

fn run_pipeline(seed: u64) -> Vec<f64> {
    let series = generate(DatasetId::TaxiDemand2, 360, seed);
    let (train, test) = series.split(0.75);
    let mut config = EaDrlConfig::default();
    config.omega = 8;
    config.episodes = 8;
    config.restarts = 1;
    config.ddpg.seed = seed;
    let mut model = EaDrl::new(quick_pool(5, 48, seed), config);
    model.fit(train).unwrap();
    let mut history = train.to_vec();
    let mut out = Vec::new();
    for &actual in test.iter().take(25) {
        out.push(model.predict_next(&history));
        history.push(actual);
    }
    out
}

#[test]
fn identical_seeds_give_bitwise_identical_forecasts() {
    assert_eq!(run_pipeline(42), run_pipeline(42));
}

#[test]
fn different_seeds_give_different_forecasts() {
    assert_ne!(run_pipeline(1), run_pipeline(2));
}

#[test]
fn dataset_generation_is_stable_across_calls() {
    for id in DatasetId::all() {
        let a = generate(id, 250, 7);
        let b = generate(id, 250, 7);
        assert_eq!(a.values(), b.values(), "{id:?}");
    }
}

#[test]
fn standard_pool_construction_is_deterministic() {
    let a = standard_pool(5, 24, 9);
    let b = standard_pool(5, 24, 9);
    let names_a: Vec<&str> = a.iter().map(|m| m.name()).collect();
    let names_b: Vec<&str> = b.iter().map(|m| m.name()).collect();
    assert_eq!(names_a, names_b);
    assert_eq!(a.len(), 43);
}

#[test]
fn fitted_pool_models_predict_deterministically() {
    let series = generate(DatasetId::EnergyHumidity4, 320, 3);
    let (train, _) = series.split(0.75);
    let fit = |seed: u64| -> Vec<f64> {
        let mut pool = quick_pool(5, 144, seed);
        pool.retain_mut(|m| m.fit(train).is_ok());
        pool.iter().map(|m| m.predict_next(train)).collect()
    };
    assert_eq!(fit(5), fit(5));
}
