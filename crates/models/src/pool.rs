//! Construction of the paper's 43-model heterogeneous pool.

use crate::forecaster::Forecaster;
use crate::gbm::gradient_boosting;
use crate::gp::gaussian_process;
use crate::linear::auto_regressive;
use crate::mars::mars;
use crate::neural::{
    bilstm_forecaster, cnn_lstm_forecaster, conv_lstm_forecaster, lstm_forecaster, mlp_forecaster,
};
use crate::pcr::pcr;
use crate::pls_model::pls;
use crate::ppr::projection_pursuit;
use crate::svr::{svr_linear, svr_rbf};
use crate::tree::{decision_tree, random_forest};
use crate::{
    arima::Arima,
    ets::{Ets, EtsKind},
};

/// Size of [`standard_pool`] — the paper's pool has 43 members.
pub const STANDARD_POOL_SIZE: usize = 43;

/// The sixteen base-model families of the paper's pool (§III, "Single
/// base models set-up").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Autoregressive integrated moving average.
    Arima,
    /// Exponential smoothing (SES / Holt / Holt–Winters).
    Ets,
    /// Gradient boosting machines.
    Gbm,
    /// Gaussian-process regression.
    GaussianProcess,
    /// Support-vector regression.
    Svr,
    /// Random-forest regression.
    RandomForest,
    /// Projection-pursuit regression.
    ProjectionPursuit,
    /// Multivariate adaptive regression splines.
    Mars,
    /// Principal-component regression.
    Pcr,
    /// Decision-tree regression.
    DecisionTree,
    /// Partial-least-squares regression.
    Pls,
    /// Multilayer perceptron.
    Mlp,
    /// Long short-term memory network.
    Lstm,
    /// Bidirectional LSTM.
    BiLstm,
    /// CNN-feature-extractor LSTM.
    CnnLstm,
    /// Convolutional (patch-input) LSTM.
    ConvLstm,
    /// Anything not matching a known family prefix (custom user models).
    Other,
}

impl ModelFamily {
    /// Classifies a model by its [`crate::Forecaster::name`] prefix.
    pub fn of(model_name: &str) -> ModelFamily {
        // Longest-prefix rules: check the compound names first.
        const RULES: [(&str, ModelFamily); 17] = [
            ("CNN-LSTM", ModelFamily::CnnLstm),
            ("Conv-LSTM", ModelFamily::ConvLstm),
            ("BiLSTM", ModelFamily::BiLstm),
            ("StLSTM", ModelFamily::Lstm),
            ("LSTM", ModelFamily::Lstm),
            ("ARIMA", ModelFamily::Arima),
            ("ETS", ModelFamily::Ets),
            ("GBM", ModelFamily::Gbm),
            ("GP", ModelFamily::GaussianProcess),
            ("SVR", ModelFamily::Svr),
            ("RFR", ModelFamily::RandomForest),
            ("PPR", ModelFamily::ProjectionPursuit),
            ("MARS", ModelFamily::Mars),
            ("PCR", ModelFamily::Pcr),
            ("DT", ModelFamily::DecisionTree),
            ("PLS", ModelFamily::Pls),
            ("MLP", ModelFamily::Mlp),
        ];
        for (prefix, family) in RULES {
            if model_name.starts_with(prefix) {
                return family;
            }
        }
        ModelFamily::Other
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ModelFamily::Arima => "ARIMA",
            ModelFamily::Ets => "ETS",
            ModelFamily::Gbm => "GBM",
            ModelFamily::GaussianProcess => "Gaussian process",
            ModelFamily::Svr => "SVR",
            ModelFamily::RandomForest => "Random forest",
            ModelFamily::ProjectionPursuit => "Projection pursuit",
            ModelFamily::Mars => "MARS",
            ModelFamily::Pcr => "PCR",
            ModelFamily::DecisionTree => "Decision tree",
            ModelFamily::Pls => "PLS",
            ModelFamily::Mlp => "MLP",
            ModelFamily::Lstm => "LSTM",
            ModelFamily::BiLstm => "Bi-LSTM",
            ModelFamily::CnnLstm => "CNN-LSTM",
            ModelFamily::ConvLstm => "Conv-LSTM",
            ModelFamily::Other => "other",
        }
    }
}

/// Builds the 43-model pool used throughout the paper's evaluation:
/// every one of the 16 families ("Single base models set-up", §III),
/// instantiated with varied hyper-parameters ("Using different parameter
/// settings for each approach, we generate a pool of 43 single base
/// models").
///
/// * `k` — embedding dimension for the regression families (paper: 5),
/// * `season` — seasonal period handed to Holt–Winters (pick the series'
///   natural period, e.g. [`eadrl_timeseries::Frequency::default_season`]),
/// * `seed` — base RNG seed for the stochastic members.
///
/// ```
/// use eadrl_models::{standard_pool, STANDARD_POOL_SIZE};
/// let pool = standard_pool(5, 24, 42);
/// assert_eq!(pool.len(), STANDARD_POOL_SIZE); // the paper's 43 models
/// ```
pub fn standard_pool(k: usize, season: usize, seed: u64) -> Vec<Box<dyn Forecaster>> {
    let season = season.max(2);
    let mut pool: Vec<Box<dyn Forecaster>> = vec![
        // ARIMA — 5 configurations.
        Box::new(Arima::new(1, 0, 0)),
        Box::new(Arima::new(2, 0, 1)),
        Box::new(Arima::new(1, 1, 1)),
        Box::new(Arima::new(2, 1, 2)),
        Box::new(Arima::new(5, 0, 0)),
        // ETS — 3.
        Box::new(Ets::new(EtsKind::Simple)),
        Box::new(Ets::new(EtsKind::Holt)),
        Box::new(Ets::new(EtsKind::HoltWinters { period: season })),
        // GBM — 3.
        Box::new(gradient_boosting(k, 60, 2, 0.1)),
        Box::new(gradient_boosting(k, 100, 3, 0.05)),
        Box::new(gradient_boosting(k, 40, 4, 0.2)),
        // GP — 3.
        Box::new(gaussian_process(k, 0.5, 1e-2, 150)),
        Box::new(gaussian_process(k, 1.0, 1e-2, 150)),
        Box::new(gaussian_process(k, 2.0, 1e-2, 150)),
        // SVR — 3.
        Box::new(svr_linear(k, 10.0, 0.01)),
        Box::new(svr_rbf(k, 10.0, 0.01, 0.5, seed ^ 0x51)),
        Box::new(svr_rbf(k, 10.0, 0.01, 2.0, seed ^ 0x52)),
        // RFR — 3.
        Box::new(random_forest(k, 15, 6, seed ^ 0x61)),
        Box::new(random_forest(k, 30, 8, seed ^ 0x62)),
        Box::new(random_forest(k, 10, 4, seed ^ 0x63)),
        // PPR — 2.
        Box::new(projection_pursuit(k, 2, seed ^ 0x71)),
        Box::new(projection_pursuit(k, 4, seed ^ 0x72)),
        // MARS — 2.
        Box::new(mars(k, 8)),
        Box::new(mars(k, 15)),
        // PCR — 2.
        Box::new(pcr(k, 2)),
        Box::new(pcr(k, 4)),
        // DT — 3.
        Box::new(decision_tree(k, 3, 4)),
        Box::new(decision_tree(k, 6, 3)),
        Box::new(decision_tree(k, 10, 2)),
        // PLS — 2.
        Box::new(pls(k, 2)),
        Box::new(pls(k, 4)),
        // MLP — 3.
        Box::new(mlp_forecaster(k, vec![8], 40, seed ^ 0x81)),
        Box::new(mlp_forecaster(k, vec![16], 40, seed ^ 0x82)),
        Box::new(mlp_forecaster(k, vec![16, 8], 40, seed ^ 0x83)),
        // LSTM — 3.
        Box::new(lstm_forecaster(k, 4, 30, seed ^ 0x91)),
        Box::new(lstm_forecaster(k, 8, 30, seed ^ 0x92)),
        Box::new(lstm_forecaster(k, 12, 30, seed ^ 0x93)),
        // Bi-LSTM — 2.
        Box::new(bilstm_forecaster(k, 4, 25, seed ^ 0xa1)),
        Box::new(bilstm_forecaster(k, 8, 25, seed ^ 0xa2)),
        // CNN-LSTM — 2.
        Box::new(cnn_lstm_forecaster(k, 4, 2, 8, 30, seed ^ 0xb1)),
        Box::new(cnn_lstm_forecaster(k, 8, 3, 8, 30, seed ^ 0xb2)),
        // Conv-LSTM — 2.
        Box::new(conv_lstm_forecaster(k, 2, 8, 30, seed ^ 0xc1)),
        Box::new(conv_lstm_forecaster(k, 3, 8, 30, seed ^ 0xc2)),
    ];
    debug_assert_eq!(pool.len(), STANDARD_POOL_SIZE);
    pool.truncate(STANDARD_POOL_SIZE);
    pool
}

/// A small, fast pool (8 models, one per broad family group) for tests,
/// examples and quick experiment runs.
pub fn quick_pool(k: usize, season: usize, seed: u64) -> Vec<Box<dyn Forecaster>> {
    let season = season.max(2);
    vec![
        Box::new(Arima::new(1, 0, 0)),
        Box::new(Ets::new(EtsKind::HoltWinters { period: season })),
        Box::new(auto_regressive(k, 1e-3)),
        Box::new(gradient_boosting(k, 40, 3, 0.1)),
        Box::new(random_forest(k, 10, 6, seed ^ 0x1)),
        Box::new(decision_tree(k, 6, 3)),
        Box::new(mlp_forecaster(k, vec![8], 30, seed ^ 0x2)),
        Box::new(lstm_forecaster(k, 6, 20, seed ^ 0x3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::rolling_forecast;
    use eadrl_timeseries::metrics::rmse;

    #[test]
    fn standard_pool_has_43_members_with_unique_names() {
        let pool = standard_pool(5, 12, 0);
        assert_eq!(pool.len(), STANDARD_POOL_SIZE);
        let mut names: Vec<&str> = pool.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STANDARD_POOL_SIZE, "duplicate model names");
    }

    #[test]
    fn quick_pool_fits_and_forecasts_seasonal_series() {
        let series: Vec<f64> = (0..260)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 5.0 + 20.0)
            .collect();
        let (train, test) = series.split_at(200);
        let mut pool = quick_pool(5, 12, 7);
        for model in pool.iter_mut() {
            model
                .fit(train)
                .unwrap_or_else(|e| panic!("{} failed: {e}", model.name()));
        }
        // Every member should clearly beat a terrible constant forecast.
        for model in &pool {
            let preds = rolling_forecast(model.as_ref(), train, test);
            let err = rmse(test, &preds);
            assert!(
                err < 5.0,
                "{} rmse {err} (amplitude 5 sine should be learnable)",
                model.name()
            );
        }
    }

    #[test]
    fn standard_pool_spans_all_sixteen_families() {
        let pool = standard_pool(5, 12, 0);
        let mut families: std::collections::HashSet<ModelFamily> =
            pool.iter().map(|m| ModelFamily::of(m.name())).collect();
        families.remove(&ModelFamily::Other);
        assert_eq!(families.len(), 16, "families: {families:?}");
    }

    #[test]
    fn family_classification_handles_compound_names() {
        assert_eq!(
            ModelFamily::of("CNN-LSTM(c=4,k=2,h=8)"),
            ModelFamily::CnnLstm
        );
        assert_eq!(ModelFamily::of("Conv-LSTM(p=2,h=8)"), ModelFamily::ConvLstm);
        assert_eq!(ModelFamily::of("LSTM(h=8)"), ModelFamily::Lstm);
        assert_eq!(ModelFamily::of("BiLSTM(h=4)"), ModelFamily::BiLstm);
        assert_eq!(ModelFamily::of("GP(ℓ=0.5)"), ModelFamily::GaussianProcess);
        assert_eq!(ModelFamily::of("SomethingCustom"), ModelFamily::Other);
        assert_eq!(ModelFamily::Arima.label(), "ARIMA");
    }

    #[test]
    fn pool_members_are_cloneable() {
        let pool = quick_pool(5, 12, 0);
        let cloned: Vec<Box<dyn Forecaster>> = pool.iter().map(|m| m.box_clone()).collect();
        assert_eq!(cloned.len(), pool.len());
    }
}
