//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The lexer's one job is to make sure rules never match inside places
//! that merely *look* like code: string literals (including raw strings
//! with arbitrary `#` fences and byte strings), char literals, and
//! comments (including nested `/* /* */ */` blocks). It produces a flat
//! token stream plus a separate comment list — comments carry the
//! suppression markers and doc-comment information the engine needs.
//!
//! It is deliberately *not* a full Rust lexer: it has no notion of
//! keywords beyond identifier spelling, and numeric literals are only
//! classified far enough to answer "is this a float?".

/// What a token is, at lint granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `pub`, …).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`, tuple indices).
    Int,
    /// Float literal (`0.0`, `1e-6`, `1f64`, `2.`).
    Float,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Single-character punctuation (`.`, `(`, `#`, `!`, …).
    Punct,
    /// Multi-character operator we must not split (`==`, `!=`, `::`, …).
    Op,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Str`] this is the *content*
    /// between the quotes (fences stripped, escapes untouched), because
    /// rules match on literal values, not on quoting style. For a raw
    /// identifier (`r#fn`) this is the bare name (`fn`) with [`Token::raw`]
    /// set, so rules match the name while the parser still knows it is
    /// *not* a keyword.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// True for raw identifiers (`r#type`): the text is an identifier
    /// even when it spells a keyword.
    pub raw: bool,
}

impl Token {
    /// True when the token is the *keyword* `kw` — an identifier spelling
    /// it that is not a raw identifier (`r#fn` is a name, not `fn`).
    pub fn is_kw(&self, kw: &str) -> bool {
        self.kind == TokenKind::Ident && !self.raw && self.text == kw
    }
}

/// One comment, kept separate from the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Raw comment text including its `//` / `/*` markers.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: usize,
    /// 1-based line where the comment ends (same as `line` for `//`).
    pub end_line: usize,
    /// Outer doc comment (`///` or `/** … */`).
    pub doc: bool,
    /// Nothing but whitespace precedes the comment on its start line.
    pub own_line: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied();
        if let Some(b) = c {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        c
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn line_start_is_blank(&self) -> bool {
        // Walk back from pos to the previous newline; only whitespace allowed.
        let mut i = self.pos;
        while i > 0 {
            let b = self.src[i - 1];
            if b == b'\n' {
                return true;
            }
            if !b.is_ascii_whitespace() {
                return false;
            }
            i -= 1;
        }
        true
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src`, returning tokens and comments. Never fails: unterminated
/// constructs are closed at end of input (a lint must not crash on the
/// code it inspects).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let start_line = cur.line;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let own_line = cur.line_start_is_blank();
                let start = cur.pos;
                while let Some(b) = cur.peek(0) {
                    if b == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = src[start..cur.pos].to_string();
                let doc = text.starts_with("///") && !text.starts_with("////");
                out.comments.push(Comment {
                    text,
                    line: start_line,
                    end_line: start_line,
                    doc,
                    own_line,
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                let own_line = cur.line_start_is_blank();
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    if cur.starts_with("/*") {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    } else if cur.starts_with("*/") {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    } else if cur.bump().is_none() {
                        break;
                    }
                }
                let text = src[start..cur.pos].to_string();
                let doc = text.starts_with("/**") && text.len() > 4;
                out.comments.push(Comment {
                    text,
                    line: start_line,
                    end_line: cur.line,
                    doc,
                    own_line,
                });
            }
            b'"' => {
                let content = lex_quoted_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: content,
                    line: start_line,
                    raw: false,
                });
            }
            b'r' | b'b' if starts_string_prefix(&cur) => {
                let content = lex_prefixed_string(&mut cur);
                out.tokens.push(Token {
                    kind: content.0,
                    text: content.1,
                    line: start_line,
                    raw: false,
                });
            }
            // Raw identifier `r#fn` / `r#type`: `r#` followed by an
            // identifier start that is *not* a raw-string fence (those are
            // caught by `starts_string_prefix` above — any number of `#`s
            // followed by a quote).
            b'r' if cur.peek(1) == Some(b'#')
                && cur.peek(2).map(is_ident_start).unwrap_or(false) =>
            {
                cur.bump(); // r
                cur.bump(); // #
                let start = cur.pos;
                while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..cur.pos].to_string(),
                    line: start_line,
                    raw: true,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`). A lifetime is a
                // quote followed by an identifier that is NOT closed by
                // another quote.
                let is_lifetime = cur.peek(1).map(is_ident_start).unwrap_or(false) && {
                    // Scan the identifier; lifetime iff no closing quote.
                    let mut i = 1;
                    while cur.peek(i).map(is_ident_continue).unwrap_or(false) {
                        i += 1;
                    }
                    cur.peek(i) != Some(b'\'')
                };
                if is_lifetime {
                    cur.bump();
                    let start = cur.pos;
                    while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: src[start..cur.pos].to_string(),
                        line: start_line,
                        raw: false,
                    });
                } else {
                    cur.bump();
                    let start = cur.pos;
                    loop {
                        match cur.peek(0) {
                            Some(b'\\') => {
                                cur.bump();
                                cur.bump();
                            }
                            Some(b'\'') | None => break,
                            _ => {
                                cur.bump();
                            }
                        }
                    }
                    let text = src[start..cur.pos].to_string();
                    cur.bump(); // closing quote
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text,
                        line: start_line,
                        raw: false,
                    });
                }
            }
            b'0'..=b'9' => {
                // A number directly after `.` is a tuple index (`x.0`,
                // `x.0.1`): digits only, so `x.0.1` never yields a bogus
                // float `0.1`.
                let after_dot = matches!(
                    out.tokens.last(),
                    Some(Token { kind: TokenKind::Punct, text, .. }) if text == "."
                );
                let (kind, text) = lex_number(&mut cur, src, after_dot);
                out.tokens.push(Token {
                    kind,
                    text,
                    line: start_line,
                    raw: false,
                });
            }
            _ if is_ident_start(c) => {
                let start = cur.pos;
                while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..cur.pos].to_string(),
                    line: start_line,
                    raw: false,
                });
            }
            _ => {
                if let Some(op) = OPERATORS.iter().find(|op| cur.starts_with(op)) {
                    for _ in 0..op.len() {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Op,
                        text: (*op).to_string(),
                        line: start_line,
                        raw: false,
                    });
                } else {
                    cur.bump();
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: (c as char).to_string(),
                        line: start_line,
                        raw: false,
                    });
                }
            }
        }
    }
    out
}

/// True when the cursor sits on `r"`, `r#…#"`, `b"`, `br"`, `br#…#"` or
/// `b'` — i.e. the `r`/`b` is a literal prefix, not an identifier.
fn starts_string_prefix(cur: &Cursor<'_>) -> bool {
    let mut i = 1;
    if cur.peek(0) == Some(b'b') {
        match cur.peek(1) {
            Some(b'\'') | Some(b'"') => return true,
            Some(b'r') => i = 2,
            _ => return false,
        }
    }
    // `r` (or `br`) followed by hashes then a quote.
    match cur.peek(i) {
        Some(b'"') => true,
        Some(b'#') => {
            let mut j = i;
            while cur.peek(j) == Some(b'#') {
                j += 1;
            }
            cur.peek(j) == Some(b'"')
        }
        _ => false,
    }
}

/// Lexes a plain `"…"` string (cursor on the opening quote), returning
/// the content between the quotes.
fn lex_quoted_string(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // opening quote
    let mut content = String::new();
    loop {
        match cur.peek(0) {
            Some(b'\\') => {
                content.push(cur.bump().unwrap_or(b'\\') as char);
                if let Some(b) = cur.bump() {
                    content.push(b as char);
                }
            }
            Some(b'"') => {
                cur.bump();
                break;
            }
            Some(_) => {
                let p = cur.pos;
                cur.bump();
                content.push_str(std::str::from_utf8(&cur.src[p..cur.pos]).unwrap_or(""));
            }
            None => break,
        }
    }
    content
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` (cursor on the
/// prefix). Returns the token kind and the fence-stripped content.
fn lex_prefixed_string(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    if cur.peek(0) == Some(b'b') && cur.peek(1) == Some(b'\'') {
        cur.bump(); // b
        cur.bump(); // '
        let mut content = String::new();
        loop {
            match cur.peek(0) {
                Some(b'\\') => {
                    content.push(cur.bump().unwrap_or(b'\\') as char);
                    if let Some(b) = cur.bump() {
                        content.push(b as char);
                    }
                }
                Some(b'\'') | None => {
                    cur.bump();
                    break;
                }
                Some(b) => {
                    cur.bump();
                    content.push(b as char);
                }
            }
        }
        return (TokenKind::Char, content);
    }
    if cur.peek(0) == Some(b'b') {
        cur.bump();
    }
    if cur.peek(0) == Some(b'r') {
        cur.bump();
        let mut hashes = 0usize;
        while cur.peek(0) == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        let start = cur.pos;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        let end;
        loop {
            if cur.pos + closer.len() <= cur.src.len()
                && cur.src[cur.pos..cur.pos + closer.len()] == closer[..]
            {
                end = cur.pos;
                for _ in 0..closer.len() {
                    cur.bump();
                }
                break;
            }
            if cur.bump().is_none() {
                end = cur.pos;
                break;
            }
        }
        let content = std::str::from_utf8(&cur.src[start..end])
            .unwrap_or("")
            .to_string();
        (TokenKind::Str, content)
    } else {
        // Plain byte string `b"…"` — the `b` is consumed, quote follows.
        let content = lex_quoted_string(cur);
        (TokenKind::Str, content)
    }
}

/// Lexes a numeric literal. `digits_only` restricts to tuple-index form.
fn lex_number(cur: &mut Cursor<'_>, src: &str, digits_only: bool) -> (TokenKind, String) {
    let start = cur.pos;
    let mut is_float = false;

    if cur.starts_with("0x") || cur.starts_with("0o") || cur.starts_with("0b") {
        cur.bump();
        cur.bump();
        while cur
            .peek(0)
            .map(|b| b.is_ascii_alphanumeric() || b == b'_')
            .unwrap_or(false)
        {
            cur.bump();
        }
        return (TokenKind::Int, src[start..cur.pos].to_string());
    }

    while cur
        .peek(0)
        .map(|b| b.is_ascii_digit() || b == b'_')
        .unwrap_or(false)
    {
        cur.bump();
    }
    if !digits_only {
        // Fractional part: a `.` continues the number unless it starts a
        // range (`0..n`) or a method/field access (`1.max(2)`).
        if cur.peek(0) == Some(b'.') {
            let next = cur.peek(1);
            let is_range = next == Some(b'.');
            let is_access = next.map(is_ident_start).unwrap_or(false);
            if !is_range && !is_access {
                is_float = true;
                cur.bump();
                while cur
                    .peek(0)
                    .map(|b| b.is_ascii_digit() || b == b'_')
                    .unwrap_or(false)
                {
                    cur.bump();
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(0), Some(b'e') | Some(b'E')) {
            let (sign, digit) = (cur.peek(1), cur.peek(2));
            let direct_digit = sign.map(|b| b.is_ascii_digit()).unwrap_or(false);
            let signed_digit = matches!(sign, Some(b'+') | Some(b'-'))
                && digit.map(|b| b.is_ascii_digit()).unwrap_or(false);
            if direct_digit || signed_digit {
                is_float = true;
                cur.bump(); // e
                if signed_digit {
                    cur.bump(); // sign
                }
                while cur
                    .peek(0)
                    .map(|b| b.is_ascii_digit() || b == b'_')
                    .unwrap_or(false)
                {
                    cur.bump();
                }
            }
        }
        // Type suffix (`u64`, `f64`, `usize`, …).
        if cur.peek(0).map(is_ident_start).unwrap_or(false) {
            let sfx_start = cur.pos;
            while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
                cur.bump();
            }
            let suffix = &src[sfx_start..cur.pos];
            if suffix == "f32" || suffix == "f64" {
                is_float = true;
            }
        }
    }
    let kind = if is_float {
        TokenKind::Float
    } else {
        TokenKind::Int
    };
    (kind, src[start..cur.pos].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_code_like_content() {
        let toks = kinds(r#"let s = "a == 0.0 .unwrap()";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("== 0.0")));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Float));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds("let s = r#\"panic!(\"inner\")\"#;");
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("panic!"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "panic"));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.text == "fn"));
        assert!(!lexed.comments[0].doc);
    }

    #[test]
    fn float_vs_int_vs_range() {
        assert!(kinds("0.0").iter().any(|(k, _)| *k == TokenKind::Float));
        assert!(kinds("1e-6").iter().any(|(k, _)| *k == TokenKind::Float));
        assert!(kinds("2f64").iter().any(|(k, _)| *k == TokenKind::Float));
        assert!(!kinds("0..n").iter().any(|(k, _)| *k == TokenKind::Float));
        assert!(!kinds("1.max(2)")
            .iter()
            .any(|(k, _)| *k == TokenKind::Float));
        assert!(!kinds("x.0.1").iter().any(|(k, _)| *k == TokenKind::Float));
        assert!(!kinds("0xFF").iter().any(|(k, _)| *k == TokenKind::Float));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn operators_are_single_tokens() {
        let toks = kinds("a == b != c :: d");
        let ops: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Op)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "::"]);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let lexed = lex("/// docs\nfn f() {}\n// plain\n");
        assert!(lexed.comments[0].doc);
        assert!(!lexed.comments[1].doc);
        assert_eq!(lexed.comments[0].line, 1);
    }

    #[test]
    fn raw_identifiers_are_idents_not_raw_strings() {
        // `r#fn` must lex as ONE identifier (`fn`, raw), not as `r`+`#`+`fn`
        // and certainly not as the start of a raw string swallowing the
        // rest of the file.
        let lexed = lex("let r#fn = r#type; let live = 1;");
        let raws: Vec<_> = lexed.tokens.iter().filter(|t| t.raw).collect();
        assert_eq!(raws.len(), 2);
        assert_eq!(raws[0].text, "fn");
        assert_eq!(raws[1].text, "type");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "live"));
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn raw_identifier_vs_raw_string_disambiguation() {
        // `r#"…"#` stays a raw string; `r#struct` right next to it stays an
        // identifier.
        let toks = kinds("let a = r#\"text\"#; let r#struct = 2;");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        let lexed = lex("let a = r#\"text\"#; let r#struct = 2;");
        assert!(lexed.tokens.iter().any(|t| t.raw && t.text == "struct"));
    }

    #[test]
    fn is_kw_rejects_raw_identifiers() {
        let lexed = lex("fn f() { let r#fn = 1; }");
        let kw_fns: Vec<_> = lexed.tokens.iter().filter(|t| t.is_kw("fn")).collect();
        assert_eq!(kw_fns.len(), 1, "only the real `fn` keyword counts");
        assert_eq!(kw_fns[0].line, 1);
    }

    #[test]
    fn escaped_quote_in_string() {
        let toks = kinds(r#"let s = "he said \"hi\""; let t = 1;"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "t"));
    }
}
