//! Validates a JSONL telemetry trace against the eadrl-obs wire
//! contract. Used by CI on the quickstart trace.
//!
//! ```text
//! obs_validate TRACE.jsonl [--require NAME]... [--schema DESIGN.md]
//! ```
//!
//! Every non-empty line must parse as a JSON object with a numeric `ts`
//! and string `name`/`kind`/`level` fields (the full [`eadrl_obs::Event`]
//! contract). Each `--require NAME` additionally demands at least one
//! event whose name — or any `/`-separated span path segment — equals
//! NAME. `--schema DESIGN.md` additionally validates every event name
//! (every span-path segment) against the "Telemetry event schema" table
//! in that file. Exits non-zero with a diagnostic on the first violation.

use eadrl_obs::{Event, ObsSchema};
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .ok_or("usage: obs_validate TRACE.jsonl [--require NAME]... [--schema DESIGN.md]")?;
    let mut required: Vec<String> = Vec::new();
    let mut schema: Option<ObsSchema> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--require" => {
                required.push(args.next().ok_or("--require needs a NAME argument")?);
            }
            "--schema" => {
                let md_path = args.next().ok_or("--schema needs a FILE argument")?;
                let md = std::fs::read_to_string(&md_path)
                    .map_err(|e| format!("cannot read {md_path}: {e}"))?;
                schema = Some(ObsSchema::from_design_md(&md).ok_or(format!(
                    "{md_path}: no 'Telemetry event schema' table found"
                ))?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut seen = vec![false; required.len()];
    let mut events = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_json_line(line)
            .map_err(|e| format!("{path}:{}: invalid event: {e}", lineno + 1))?;
        events += 1;
        if let Some(schema) = &schema {
            // Metric names are derived (`<histogram>.p50` etc.), not
            // emitter literals; the schema table binds events and spans.
            if event.kind != eadrl_obs::EventKind::Metric && !schema.matches_path(&event.name) {
                return Err(format!(
                    "{path}:{}: event name '{}' is not in the schema table",
                    lineno + 1,
                    event.name
                ));
            }
        }
        for (i, name) in required.iter().enumerate() {
            if event.name_matches(name) {
                seen[i] = true;
            }
        }
    }
    if events == 0 {
        return Err(format!("{path}: trace contains no events"));
    }
    for (i, name) in required.iter().enumerate() {
        if !seen[i] {
            return Err(format!(
                "{path}: no event named '{name}' in {events} events"
            ));
        }
    }
    println!("{path}: {events} events OK");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("obs_validate: {msg}");
            ExitCode::FAILURE
        }
    }
}
