//! Chaos scenarios: seeded end-to-end runs of the serving path under a
//! fault plan.
//!
//! A [`Scenario`] pins everything that can influence the run — dataset
//! seed, pool seed, fault plan, guard policy — so the same scenario
//! replays bit-identically on every machine and at every
//! `EADRL_PAR_THREADS` setting. The runner drives the full Algorithm-1
//! life cycle: offline fit (pool fitting + policy learning) followed by
//! the online serve loop, with gap bursts injected into the observed
//! history, and optionally a drift-triggered online-refresh phase
//! ([`run_refresh_scenario`]). Telemetry is captured in a process-global
//! sink, so scenario runs are serialized behind a module lock — callers
//! can invoke them from concurrently running tests without telemetry
//! cross-talk.
//!
//! [`run_unhardened`] drives the same faults through a deliberately
//! naive serving loop (no guard, no sanitization) — the committed
//! regression proof that the fault plans *would* break an unhardened
//! pipeline. CI runs it inverted: the build fails if the unhardened
//! loop ever stops producing violations.

use crate::fault::FaultPlan;
use crate::invariants::{check_run, InvariantReport};
use crate::proxy::{quiet_injected_panics, FaultyForecaster};
use eadrl_core::online::{AdaptiveEaDrl, RefreshStrategy, RefreshTrigger};
use eadrl_core::{Combiner, EaDrl, EaDrlConfig};
use eadrl_datasets::{generate, DatasetId};
use eadrl_models::{quick_pool, Forecaster};
use eadrl_obs::{Event, Level, RingSink};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Serializes scenario runs: telemetry capture swaps the process-global
/// sink, so two concurrent runs would interleave their event streams.
static SCENARIO_LOCK: Mutex<()> = Mutex::new(());

/// A fully pinned chaos scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (telemetry + report labels).
    pub name: String,
    /// The fault plan to inject.
    pub plan: FaultPlan,
    /// Synthetic series length (split 75/25 into train/serve).
    pub series_len: usize,
    /// Online serving steps (capped by the test split length).
    pub serve_steps: usize,
    /// Seed for the dataset, the pool, and the policy.
    pub seed: u64,
    /// Deterministic per-call latency budget for the guard, if any.
    pub latency_budget_us: Option<u64>,
}

impl Scenario {
    /// A scenario with the standard harness sizing (360-point series,
    /// 30 serving steps).
    pub fn new(name: &str, plan: FaultPlan, seed: u64) -> Scenario {
        Scenario {
            name: name.to_string(),
            plan,
            series_len: 360,
            serve_steps: 30,
            seed,
            latency_budget_us: None,
        }
    }
}

/// Everything a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario name.
    pub name: String,
    /// Served forecasts, in order.
    pub forecasts: Vec<f64>,
    /// Raw bit patterns of the forecasts (golden-test currency).
    pub forecast_bits: Vec<u64>,
    /// The run's full ordered telemetry.
    pub events: Vec<Event>,
    /// `eadrl.quarantine` enter events observed.
    pub quarantine_enters: usize,
    /// `eadrl.quarantine` exit events observed.
    pub quarantine_exits: usize,
    /// `eadrl.degraded` events observed (serving + fit + refresh paths).
    pub degraded_events: usize,
    /// `eadrl.sanitize` events observed.
    pub sanitize_events: usize,
    /// The invariant audit.
    pub report: InvariantReport,
}

impl ScenarioOutcome {
    /// A compact deterministic fingerprint of the telemetry stream:
    /// `EventKind::Event` names with their payload bits folded in
    /// emission order (FNV-1a). Two runs of the same scenario must
    /// agree on it — including across `EADRL_PAR_THREADS` settings.
    ///
    /// Span and metric records are excluded entirely: span payloads
    /// carry wall-clock durations, and the *number* of `par.worker`
    /// spans legitimately tracks the worker count. Event-kind records
    /// are the deterministic contract (workers buffer them and the
    /// harness emits after the index-ordered merge).
    pub fn telemetry_fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for event in &self.events {
            if event.kind != eadrl_obs::EventKind::Event {
                continue;
            }
            for b in event.name.bytes() {
                mix(b);
            }
            for (key, value) in &event.fields {
                for b in key.bytes() {
                    mix(b);
                }
                let folded: Vec<u64> = match value {
                    eadrl_obs::Value::F64(x) => vec![x.to_bits()],
                    eadrl_obs::Value::F64s(xs) => xs.iter().map(|x| x.to_bits()).collect(),
                    eadrl_obs::Value::U64(x) => vec![*x],
                    eadrl_obs::Value::I64(x) => vec![*x as u64],
                    eadrl_obs::Value::Bool(x) => vec![u64::from(*x)],
                    eadrl_obs::Value::Str(s) => {
                        for b in s.bytes() {
                            mix(b);
                        }
                        Vec::new()
                    }
                };
                for x in folded {
                    for b in x.to_le_bytes() {
                        mix(b);
                    }
                }
            }
        }
        hash
    }
}

/// The standard guard-equipped configuration every scenario serves with:
/// fast policy learning, aggressive quarantine (2 consecutive faults)
/// and quick re-entry (4 clean probes) so short runs exercise the full
/// health state machine.
fn scenario_config(scenario: &Scenario) -> EaDrlConfig {
    let mut config = EaDrlConfig {
        omega: 8,
        episodes: 6,
        restarts: 1,
        ..EaDrlConfig::default()
    };
    config.ddpg.seed = scenario.seed;
    config.guard.quarantine_after = 2;
    config.guard.reentry_clean_calls = 4;
    config.guard.latency_budget_us = scenario.latency_budget_us;
    config
}

fn build_pool(scenario: &Scenario) -> Vec<Box<dyn Forecaster>> {
    quick_pool(5, 48, scenario.seed)
        .into_iter()
        .enumerate()
        .map(|(i, model)| match scenario.plan.fault_for(i) {
            Some(kind) => Box::new(FaultyForecaster::new(
                model,
                kind,
                scenario.plan.substream(i),
            )) as Box<dyn Forecaster>,
            None => model,
        })
        .collect()
}

fn capture_telemetry() -> Arc<RingSink> {
    let sink = Arc::new(RingSink::new(65_536));
    eadrl_obs::set_sink(sink.clone());
    eadrl_obs::set_level(Some(Level::Debug));
    sink
}

fn count_named(events: &[Event], name: &str) -> usize {
    events.iter().filter(|e| e.name == name).count()
}

fn count_quarantine(events: &[Event], action: &str) -> usize {
    events
        .iter()
        .filter(|e| {
            e.name == "eadrl.quarantine"
                && e.fields.iter().any(|(k, v)| {
                    k == "action" && matches!(v, eadrl_obs::Value::Str(s) if s == action)
                })
        })
        .count()
}

/// Runs the offline-fit → online-serve scenario under the hardened
/// pipeline and audits the invariants.
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let _guard = SCENARIO_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    quiet_injected_panics();
    let sink = capture_telemetry();

    let series = generate(DatasetId::TaxiDemand2, scenario.series_len, scenario.seed);
    let (train, test) = series.split(0.75);
    let mut model = EaDrl::new(build_pool(scenario), scenario_config(scenario));

    let mut forecasts = Vec::new();
    let mut violations = Vec::new();
    match model.fit(train) {
        Ok(()) => {
            let mut history = train.to_vec();
            for (step, &actual) in test.iter().take(scenario.serve_steps).enumerate() {
                forecasts.push(model.predict_next(&history));
                // Gap bursts: the runner observes NaN instead of the
                // actual — the sanitizer must absorb it downstream.
                if scenario.plan.gapped(step) {
                    history.push(f64::NAN);
                } else {
                    history.push(actual);
                }
            }
        }
        Err(e) => violations.push(format!("offline fit failed: {e}")),
    }

    let events = sink.events();
    let mut report = check_run(&forecasts, &events);
    report.violations.extend(violations);
    ScenarioOutcome {
        name: scenario.name.clone(),
        forecast_bits: forecasts.iter().map(|f| f.to_bits()).collect(),
        forecasts,
        quarantine_enters: count_quarantine(&events, "enter"),
        quarantine_exits: count_quarantine(&events, "exit"),
        degraded_events: count_named(&events, "eadrl.degraded"),
        sanitize_events: count_named(&events, "eadrl.sanitize"),
        report,
        events,
    }
}

/// Runs the drift-triggered online-refresh phase under faults: a
/// regime-flipping prediction stream drives an [`AdaptiveEaDrl`] whose
/// observed actuals suffer the plan's gap bursts. Assert-ready outcome:
/// the detector must survive the gaps (non-finite errors are ignored,
/// the refresh buffer is sanitized) and still refresh after the flip.
pub fn run_refresh_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let _guard = SCENARIO_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    quiet_injected_panics();
    let sink = capture_telemetry();

    let series = generate(DatasetId::TaxiDemand2, scenario.series_len, scenario.seed);
    let values = series.values();
    let m = 3usize;
    let flip = values.len() / 2;
    // Member 0 tracks the series before the flip, member 1 after, member
    // 2 never — the regime change Page–Hinkley must catch.
    let preds: Vec<Vec<f64>> = values
        .iter()
        .enumerate()
        .map(|(t, &a)| {
            let wobble = ((t * 7) % 13) as f64 / 13.0 - 0.5;
            if t < flip {
                vec![a + 0.1 * wobble, a + 2.5 + wobble, a - 7.0]
            } else {
                vec![a + 2.5 - wobble, a + 0.1 * wobble, a - 7.0]
            }
        })
        .collect();
    let warm = values.len() / 3;

    let mut config = scenario_config(scenario);
    config.omega = 6;
    let mut adaptive = AdaptiveEaDrl::new(
        config,
        RefreshTrigger::DriftDetected {
            delta: 0.05,
            lambda: 6.0,
        },
        80,
    );
    adaptive.warm_up(&preds[..warm], &values[..warm]);

    let mut forecasts = Vec::new();
    for (step, (p, &a)) in preds[warm..].iter().zip(values[warm..].iter()).enumerate() {
        let w = adaptive.weights(m);
        forecasts.push(w.iter().zip(p.iter()).map(|(wi, pi)| wi * pi).sum());
        let observed = if scenario.plan.gapped(step) {
            f64::NAN
        } else {
            a
        };
        adaptive.observe(p, observed);
    }

    let events = sink.events();
    let mut report = check_run(&forecasts, &events);
    if adaptive.refreshes() == 0 {
        report
            .violations
            .push("drift-triggered refresh never fired across a regime flip".to_string());
    }
    ScenarioOutcome {
        name: scenario.name.clone(),
        forecast_bits: forecasts.iter().map(|f| f.to_bits()).collect(),
        forecasts,
        quarantine_enters: count_quarantine(&events, "enter"),
        quarantine_exits: count_quarantine(&events, "exit"),
        degraded_events: count_named(&events, "eadrl.degraded"),
        sanitize_events: count_named(&events, "eadrl.sanitize"),
        report,
        events,
    }
}

/// Runs the warm-start online-refresh phase with a fault landing in the
/// middle of the refresh pipeline itself: a periodic [`RefreshStrategy::
/// WarmStart`] schedule meets a member outage that leaves ragged rows in
/// the refresh buffer. Every retraining attempt over the corrupted
/// window — the warm refinement and its cold fallbacks alike — panics
/// inside the environment constructor. The audit requires the serving
/// loop to quarantine those failures (panics caught, `eadrl.degraded`
/// emitted, nothing deployed), to keep forecasting finitely throughout,
/// to record the cold fallback in the `eadrl.online.refresh` telemetry,
/// and to deploy again on the first refresh over a clean buffer.
pub fn run_warm_refresh_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let _guard = SCENARIO_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    quiet_injected_panics();
    let sink = capture_telemetry();

    let series = generate(DatasetId::TaxiDemand2, scenario.series_len, scenario.seed);
    let values = series.values();
    let m = 3usize;
    let flip = values.len() / 2;
    let preds: Vec<Vec<f64>> = values
        .iter()
        .enumerate()
        .map(|(t, &a)| {
            let wobble = ((t * 7) % 13) as f64 / 13.0 - 0.5;
            if t < flip {
                vec![a + 0.1 * wobble, a + 2.5 + wobble, a - 7.0]
            } else {
                vec![a + 2.5 - wobble, a + 0.1 * wobble, a - 7.0]
            }
        })
        .collect();
    let warm = values.len() / 3;

    let mut config = scenario_config(scenario);
    config.omega = 6;
    let buffer = 60;
    let mut adaptive = AdaptiveEaDrl::new(config, RefreshTrigger::Periodic { period: 40 }, buffer)
        .with_strategy(RefreshStrategy::WarmStart { episodes: 4 });
    adaptive.warm_up(&preds[..warm], &values[..warm]);

    // The mid-refresh fault: member 2 drops out for ten steps, so the
    // buffer carries truncated (ragged) rows for the next `buffer`
    // steps. The periodic refreshes at steps 39 and 79 both see the
    // corruption; the one at step 119 trains on a clean window again.
    let outage = 35..45;
    let mut forecasts = Vec::new();
    for (step, (p, &a)) in preds[warm..].iter().zip(values[warm..].iter()).enumerate() {
        let w = adaptive.weights(m);
        forecasts.push(w.iter().zip(p.iter()).map(|(wi, pi)| wi * pi).sum());
        let observed = if scenario.plan.gapped(step) {
            f64::NAN
        } else {
            a
        };
        if outage.contains(&step) {
            adaptive.observe(&p[..2], observed);
        } else {
            adaptive.observe(p, observed);
        }
    }

    let events = sink.events();
    let mut report = check_run(&forecasts, &events);
    let refresh_degraded = events
        .iter()
        .filter(|e| {
            e.name == "eadrl.degraded"
                && e.fields.iter().any(|(k, v)| {
                    k == "context" && matches!(v, eadrl_obs::Value::Str(s) if s == "refresh")
                })
        })
        .count();
    if refresh_degraded == 0 {
        report
            .violations
            .push("ragged buffer rows never surfaced as quarantined refresh attempts".to_string());
    }
    let cold_fallbacks = events
        .iter()
        .filter(|e| {
            e.name == "eadrl.online.refresh"
                && e.fields
                    .iter()
                    .any(|(k, v)| k == "restart" && matches!(v, eadrl_obs::Value::Bool(true)))
        })
        .count();
    if cold_fallbacks == 0 {
        report
            .violations
            .push("warm-start refresh never recorded a cold fallback in telemetry".to_string());
    }
    if adaptive.refreshes() == 0 {
        report
            .violations
            .push("no refresh deployed after the corrupted rows left the buffer".to_string());
    }
    ScenarioOutcome {
        name: scenario.name.clone(),
        forecast_bits: forecasts.iter().map(|f| f.to_bits()).collect(),
        forecasts,
        quarantine_enters: count_quarantine(&events, "enter"),
        quarantine_exits: count_quarantine(&events, "exit"),
        degraded_events: count_named(&events, "eadrl.degraded"),
        sanitize_events: count_named(&events, "eadrl.sanitize"),
        report,
        events,
    }
}

/// Drives the scenario's faults through a deliberately naive serving
/// loop — no guard, no sanitization, no quarantine — and audits the same
/// invariants. This is the regression fixture proving the fault plans
/// have teeth: it must keep producing violations (CI runs it inverted).
pub fn run_unhardened(scenario: &Scenario) -> ScenarioOutcome {
    let _guard = SCENARIO_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    quiet_injected_panics();
    let sink = capture_telemetry();

    let series = generate(DatasetId::TaxiDemand2, scenario.series_len, scenario.seed);
    let (train, test) = series.split(0.75);
    let mut forecasts = Vec::new();
    let mut violations = Vec::new();

    let crashed = catch_unwind(AssertUnwindSafe(|| {
        let mut pool = build_pool(scenario);
        pool.retain_mut(|model| model.fit(train).is_ok());
        let weight = 1.0 / pool.len().max(1) as f64;
        let mut history = train.to_vec();
        for (step, &actual) in test.iter().take(scenario.serve_steps).enumerate() {
            // The naive combination: uniform dot product, no masking.
            let ens: f64 = pool
                .iter()
                .map(|model| weight * model.predict_next(&history))
                .sum();
            forecasts.push(ens);
            if scenario.plan.gapped(step) {
                history.push(f64::NAN);
            } else {
                history.push(actual);
            }
        }
    }))
    .is_err();
    if crashed {
        violations.push("unhardened serving loop crashed on an injected panic".to_string());
    }

    let events = sink.events();
    let mut report = check_run(&forecasts, &events);
    report.violations.extend(violations);
    ScenarioOutcome {
        name: format!("{} (unhardened)", scenario.name),
        forecast_bits: forecasts.iter().map(|f| f.to_bits()).collect(),
        forecasts,
        quarantine_enters: count_quarantine(&events, "enter"),
        quarantine_exits: count_quarantine(&events, "exit"),
        degraded_events: count_named(&events, "eadrl.degraded"),
        sanitize_events: count_named(&events, "eadrl.sanitize"),
        report,
        events,
    }
}

/// The standard chaos suite: every fault class the guard handles, plus
/// the drift-refresh phase (run it with [`run_refresh_scenario`]).
pub fn standard_scenarios() -> Vec<Scenario> {
    let mixed = FaultPlan::parse(
        "seed 7\n\
         model 1 panic_every 4\n\
         model 3 nonfinite_every 3 nan\n\
         model 6 fail_fit\n\
         gap 12 3\n",
    )
    .expect("static plan parses");
    // The burst on model 4 starts just after the ~68 fit-phase calls a
    // 360-point scenario makes (the rolling prediction matrix probes the
    // validation segment), so it lands early in the serve phase: two
    // consecutive faults trip quarantine, the burst ends, and four clean
    // probes later the member re-enters — the full health round trip.
    let recovery = FaultPlan::parse(
        "seed 11\n\
         model 2 panic_at 2\n\
         model 4 nonfinite_burst 70 6 inf\n\
         model 5 stale_from 5\n",
    )
    .expect("static plan parses");
    let budget = FaultPlan::parse(
        "seed 13\n\
         model 0 slow_every 2 cost 900\n\
         model 7 flaky 0.3\n\
         gap 5 2\n\
         gap 20 4\n",
    )
    .expect("static plan parses");
    let mut scenarios = vec![
        Scenario::new("mixed-faults", mixed, 101),
        Scenario::new("quarantine-recovery", recovery, 202),
        Scenario::new("budget-and-flaky", budget, 303),
    ];
    scenarios[2].latency_budget_us = Some(500);
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str, plan_text: &str, seed: u64) -> Scenario {
        let mut scenario = Scenario::new(name, FaultPlan::parse(plan_text).expect("plan"), seed);
        scenario.series_len = 240;
        scenario.serve_steps = 16;
        scenario
    }

    #[test]
    fn clean_scenario_upholds_invariants_with_no_degradation() {
        let outcome = run_scenario(&tiny("clean", "seed 1\n", 5));
        assert!(outcome.report.passed(), "{:?}", outcome.report.violations);
        assert_eq!(outcome.quarantine_enters, 0);
        assert_eq!(outcome.degraded_events, 0);
        assert_eq!(outcome.sanitize_events, 0, "clean runs emit no sanitize");
        assert_eq!(outcome.forecasts.len(), 16);
    }

    #[test]
    fn faulty_scenario_degrades_gracefully_and_passes_audit() {
        // `nonfinite_every 1` faults every call — the consecutive streak
        // `quarantine_after: 2` needs (periodic faults with n >= 2 always
        // have clean calls in between and never quarantine).
        let outcome = run_scenario(&tiny(
            "faulty",
            "seed 2\nmodel 1 panic_every 3\nmodel 3 nonfinite_every 1 nan\ngap 6 2\n",
            6,
        ));
        assert!(outcome.report.passed(), "{:?}", outcome.report.violations);
        assert!(
            outcome.degraded_events > 0,
            "faults must surface in telemetry"
        );
        assert!(
            outcome.quarantine_enters > 0,
            "persistent faults quarantine"
        );
        assert!(outcome.sanitize_events > 0, "gap burst must trigger repair");
    }

    #[test]
    fn scenario_runs_are_bitwise_reproducible() {
        let scenario = tiny(
            "repro",
            "seed 3\nmodel 2 panic_every 4\nmodel 5 flaky 0.4\ngap 4 2\n",
            7,
        );
        let a = run_scenario(&scenario);
        let b = run_scenario(&scenario);
        assert_eq!(a.forecast_bits, b.forecast_bits);
        assert_eq!(a.telemetry_fingerprint(), b.telemetry_fingerprint());
    }

    #[test]
    fn unhardened_loop_violates_under_the_standard_plans() {
        for scenario in standard_scenarios() {
            let mut scenario = scenario;
            scenario.series_len = 240;
            scenario.serve_steps = 16;
            let outcome = run_unhardened(&scenario);
            assert!(
                !outcome.report.passed(),
                "plan `{}` no longer breaks the naive loop — fault injection lost its teeth",
                outcome.name
            );
        }
    }

    #[test]
    fn refresh_scenario_survives_gap_bursts_and_refreshes() {
        let mut scenario = tiny("refresh", "seed 4\ngap 30 4\n", 9);
        scenario.series_len = 300;
        let outcome = run_refresh_scenario(&scenario);
        assert!(outcome.report.passed(), "{:?}", outcome.report.violations);
        assert!(outcome.forecasts.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn warm_refresh_scenario_quarantines_mid_refresh_faults() {
        let mut scenario = tiny("warm-refresh", "seed 6\ngap 50 3\n", 15);
        scenario.series_len = 360;
        let outcome = run_warm_refresh_scenario(&scenario);
        assert!(outcome.report.passed(), "{:?}", outcome.report.violations);
        assert!(outcome.forecasts.iter().all(|f| f.is_finite()));
        // The corrupted-buffer refreshes must have been caught (warm
        // attempt + cold retries each emit a degraded event) without
        // taking down the stream.
        assert!(
            outcome.degraded_events >= 3,
            "expected quarantined refresh attempts, saw {}",
            outcome.degraded_events
        );
    }

    #[test]
    fn warm_refresh_scenario_is_bitwise_reproducible() {
        let mut scenario = tiny("warm-repro", "seed 6\ngap 50 3\n", 15);
        scenario.series_len = 360;
        let a = run_warm_refresh_scenario(&scenario);
        let b = run_warm_refresh_scenario(&scenario);
        assert_eq!(a.forecast_bits, b.forecast_bits);
        assert_eq!(a.telemetry_fingerprint(), b.telemetry_fingerprint());
    }
}
