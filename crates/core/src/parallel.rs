//! Parallel pool operations: base-model fitting and the rolling
//! pool-prediction matrix, routed through `eadrl-par`.
//!
//! Both operations are embarrassingly parallel across pool members and
//! deterministic per member (every base model is seeded by its own
//! configuration, never by a generator shared across members), so the
//! index-merged [`eadrl_par::par_map`] makes the parallel output
//! bitwise identical to the serial one at every `EADRL_PAR_THREADS`
//! setting — `crates/core/tests/par_determinism.rs` is the differential
//! proof.

use eadrl_models::{fallback_forecast, Forecaster};
use eadrl_obs::Level;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fits every pool member on `fit_part` in parallel, preserving pool
/// order. Returns the fitted members plus the names of the members the
/// series could not support (also in pool order). A member whose `fit`
/// panics is dropped individually — its name is captured before the
/// call, so the drop report stays precise even though the panicked
/// model itself is discarded — instead of taking down the whole sweep.
pub fn fit_pool(
    pool: Vec<Box<dyn Forecaster>>,
    fit_part: &[f64],
) -> (Vec<Box<dyn Forecaster>>, Vec<String>) {
    let fitted = eadrl_par::par_map(pool, |mut model| {
        let name = model.name().to_string();
        match catch_unwind(AssertUnwindSafe(|| model.fit(fit_part))) {
            Ok(Ok(())) => Ok(model),
            Ok(Err(_)) => Err(name),
            Err(_) => Err(format!("{name} (fit panicked)")),
        }
    });
    let mut kept = Vec::new();
    let mut dropped = Vec::new();
    match fitted {
        Ok(results) => {
            for outcome in results {
                match outcome {
                    Ok(model) => kept.push(model),
                    Err(name) => dropped.push(name),
                }
            }
        }
        Err(err) => {
            // Unreachable with the per-member catch above unless `name`
            // or a destructor panics; keep the sweep alive regardless.
            eadrl_obs::warn(
                "par.panic",
                &[("context", format!("{err}").as_str().into())],
            );
            dropped.push(format!("pool batch lost: {err}"));
        }
    }
    (kept, dropped)
}

/// Rolling one-step prediction matrix `preds[t][i]` of a fitted pool
/// over `segment`, with the preceding history given by `train` — model
/// `i`'s forecasts computed in parallel across the pool, then merged by
/// pool index and transposed into per-step rows.
///
/// The per-model rolling state (the growing history buffer) is
/// allocated once per member up front — not re-sliced and re-grown per
/// timestep — and the transpose pre-sizes every row, so the matrix
/// costs exactly `m + t + 2` allocations for an `m`-model pool over `t`
/// steps.
pub fn prediction_matrix(
    pool: &[Box<dyn Forecaster>],
    train: &[f64],
    segment: &[f64],
) -> Vec<Vec<f64>> {
    let refs: Vec<&dyn Forecaster> = pool.iter().map(AsRef::as_ref).collect();
    let per_model = match eadrl_par::par_map(refs, |model| guarded_rolling(model, train, segment)) {
        Ok(columns) => columns,
        Err(err) => {
            eadrl_obs::event(
                "par.panic",
                Level::Warn,
                &[("context", format!("{err}").as_str().into())],
            );
            // Serial fallback keeps the forecast path alive; with the
            // per-step guard inside `guarded_rolling` this is only
            // reachable through a panicking destructor.
            pool.iter()
                .map(|m| guarded_rolling(m.as_ref(), train, segment))
                .collect()
        }
    };
    // Fault telemetry is emitted *after* the index-ordered merge, never
    // from inside a worker: worker-side emission would interleave events
    // in thread-completion order and break the telemetry-determinism
    // contract across `EADRL_PAR_THREADS` settings.
    for (i, (column, faults)) in per_model.iter().enumerate() {
        if *faults > 0 {
            eadrl_obs::event(
                "eadrl.degraded",
                Level::Warn,
                &[
                    ("context", "prediction_matrix".into()),
                    ("model", pool[i].name().into()),
                    ("faults", (*faults).into()),
                    ("steps", column.len().into()),
                ],
            );
        }
    }
    let mut rows = Vec::with_capacity(segment.len());
    for t in 0..segment.len() {
        let mut row = Vec::with_capacity(per_model.len());
        for (column, _) in &per_model {
            row.push(column[t]);
        }
        rows.push(row);
    }
    rows
}

/// [`eadrl_models::rolling_forecast`] with a per-step degradation
/// guard: a step on which the model panics or emits a non-finite value
/// contributes the documented history fallback instead of poisoning the
/// column (or the whole sweep). On a well-behaved model this is
/// call-for-call identical to the unguarded walk, so the clean-path
/// matrix stays bitwise equal to the unguarded one. Returns the
/// column plus its fault count; the caller owns fault telemetry (workers
/// must not emit events — see `prediction_matrix`).
fn guarded_rolling(model: &dyn Forecaster, train: &[f64], segment: &[f64]) -> (Vec<f64>, usize) {
    let mut history = Vec::with_capacity(train.len() + segment.len());
    history.extend_from_slice(train);
    let mut out = Vec::with_capacity(segment.len());
    let mut faults = 0usize;
    for &actual in segment {
        match crate::guard::guarded_call(model, &history, None) {
            Ok(value) => out.push(value),
            Err(_) => {
                faults += 1;
                out.push(fallback_forecast(&history));
            }
        }
        history.push(actual);
    }
    (out, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadrl_models::{auto_regressive, rolling_forecast, Naive, SeasonalNaive};

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 4.0 + 10.0)
            .collect()
    }

    fn pool() -> Vec<Box<dyn Forecaster>> {
        vec![
            Box::new(Naive),
            Box::new(SeasonalNaive::new(12)),
            Box::new(auto_regressive(4, 1e-3)),
        ]
    }

    #[test]
    fn fit_pool_keeps_order_and_reports_drops() {
        let s = series(120);
        let mut p = pool();
        p.push(Box::new(SeasonalNaive::new(100_000)));
        let (kept, dropped) = fit_pool(p, &s);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].name(), "Naive");
        assert_eq!(dropped, vec!["SeasonalNaive".to_string()]);
    }

    /// Misbehaving member for hardening tests: panics in `fit` and/or
    /// emits NaN every `nan_every`-th prediction.
    #[derive(Debug, Clone)]
    struct Misbehaving {
        panic_on_fit: bool,
        nan_every: usize,
    }

    impl Forecaster for Misbehaving {
        fn name(&self) -> &str {
            "Misbehaving"
        }
        fn fit(&mut self, _s: &[f64]) -> Result<(), eadrl_models::ModelError> {
            if self.panic_on_fit {
                panic!("injected fit panic");
            }
            Ok(())
        }
        fn predict_next(&self, history: &[f64]) -> f64 {
            if self.nan_every > 0 && history.len() % self.nan_every == 0 {
                f64::NAN
            } else {
                history.last().copied().unwrap_or(0.0) + 1.0
            }
        }
        fn box_clone(&self) -> Box<dyn Forecaster> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn panicking_fit_drops_only_the_offender() {
        let s = series(120);
        let mut p = pool();
        p.push(Box::new(Misbehaving {
            panic_on_fit: true,
            nan_every: 0,
        }));
        let (kept, dropped) = fit_pool(p, &s);
        assert_eq!(kept.len(), 3, "healthy members survive a peer's panic");
        assert_eq!(dropped, vec!["Misbehaving (fit panicked)".to_string()]);
    }

    #[test]
    fn non_finite_prediction_steps_fall_back_instead_of_poisoning() {
        let s = series(150);
        let (train, seg) = s.split_at(120);
        let faulty: Vec<Box<dyn Forecaster>> = vec![
            Box::new(Naive),
            Box::new(Misbehaving {
                panic_on_fit: false,
                nan_every: 7,
            }),
        ];
        let rows = prediction_matrix(&faulty, train, seg);
        assert_eq!(rows.len(), seg.len());
        for (t, row) in rows.iter().enumerate() {
            assert!(
                row.iter().all(|v| v.is_finite()),
                "non-finite entry leaked at step {t}: {row:?}"
            );
        }
    }

    #[test]
    fn matrix_matches_the_serial_rolling_forecast_bitwise() {
        let s = series(150);
        let (train, seg) = s.split_at(120);
        let (kept, _) = fit_pool(pool(), train);
        let rows = prediction_matrix(&kept, train, seg);
        assert_eq!(rows.len(), seg.len());
        for (i, model) in kept.iter().enumerate() {
            let serial = rolling_forecast(model.as_ref(), train, seg);
            for (t, row) in rows.iter().enumerate() {
                assert_eq!(row[i].to_bits(), serial[t].to_bits(), "model {i} step {t}");
            }
        }
    }
}
