//! The interprocedural (`--deep`) passes over the workspace call graph.
//!
//! Three dataflow arguments, each a static proof of a contract the test
//! suite only samples:
//!
//! * **panic-reachability** (`panic-reachable`) — every `pub` fn in a
//!   library crate gets a verdict: `safe` (no panic escape hatch is
//!   transitively reachable), `allowed` (every reachable hatch sits
//!   behind a justified `allow` marker), or `panics-via` (an unallowed
//!   hatch is reachable; the shortest call chain is reported). The
//!   verdict table is committed as `lint-panic-report.json` and diffed
//!   in CI — a *new* panic-reachable pub fn fails the build.
//! * **hot-path allocation** (`hot-path-alloc`) — fns named `hot` in
//!   `DESIGN.md`'s "Hot-path functions" table must not transitively
//!   reach an allocating call. Traversal stops at rows classed
//!   `exempt`, at `Workspace`-owned constructors, at `crates/obs`
//!   (telemetry is trace-gated), and at fn-level allows.
//! * **determinism taint** (`determinism-taint`) — nondeterminism
//!   sources (clock reads, hash-ordered collections, thread-id
//!   observation) must not be reachable from `fit`/`predict` paths
//!   except through `crates/obs` (the trace gate) or a justified allow.
//!
//! Suppression markers are lifted to **function granularity** for these
//! rules: a marker on (or in the doc/attribute stack directly above) a
//! `fn` header absorbs the whole fn — it neither fires findings nor
//! propagates them to callers. The passes also report which markers
//! they *used*, feeding the `stale-allow` check.

use crate::ast::{self, FileAst, SiteKind};
pub use crate::callgraph::TOOL_CRATES;
use crate::callgraph::{workspace_deps, CallGraph};
use crate::rules::{Finding, HOT_RULE, PANIC_RULE, STALE_RULE, TAINT_RULE};
use crate::source::{SourceFile, Suppression};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Fn names that root the determinism-taint traversal (the
/// forecast-producing entry points).
pub const TAINT_ROOTS: &[&str] = &["fit", "predict", "predict_next"];

/// A `(rel_path, marker_line)` pair identifying one suppression marker.
pub type MarkerId = (String, usize);

/// `--list-rules` help line for the panic-reachability pass.
pub const PANIC_RULE_HELP: (&str, &str) = (
    PANIC_RULE,
    "(deep) no pub library fn may transitively reach an unallowed panic escape hatch",
);
/// `--list-rules` help line for the hot-path allocation pass.
pub const HOT_RULE_HELP: (&str, &str) = (
    HOT_RULE,
    "(deep) DESIGN.md hot-path fns must not transitively reach allocating calls",
);
/// `--list-rules` help line for the determinism-taint pass.
pub const TAINT_RULE_HELP: (&str, &str) = (
    TAINT_RULE,
    "(deep) clocks/hash-order/thread-id must not be reachable from fit/predict paths",
);
/// `--list-rules` help line for the stale-allow check.
pub const STALE_RULE_HELP: (&str, &str) = (
    STALE_RULE,
    "(deep) allow(...) markers that no longer suppress any finding are errors",
);

/// Parsed workspace: sources, item trees, call graph.
pub struct Analysis {
    /// Lexed + marker-parsed files, index-aligned with `asts`.
    pub files: Vec<SourceFile>,
    /// Parsed item trees.
    pub asts: Vec<FileAst>,
    /// The call graph over all files.
    pub graph: CallGraph,
}

impl Analysis {
    /// Collects, lexes and parses every `.rs` file under `roots`, then
    /// builds the call graph with the dependency map read from
    /// `workspace_root`'s manifests.
    pub fn load(roots: &[PathBuf], workspace_root: &Path) -> io::Result<Analysis> {
        let mut files = Vec::new();
        for root in roots {
            for path in crate::collect_rs_files(root)? {
                let text = fs::read_to_string(&path)?;
                let rel = path.to_string_lossy().replace('\\', "/");
                files.push(SourceFile::parse(&rel, &text));
            }
        }
        Ok(Analysis::from_files(files, workspace_root))
    }

    /// Builds the analysis from already-parsed files (used by tests and
    /// by the CLI, which shares the parse with the line-level engine).
    pub fn from_files(files: Vec<SourceFile>, workspace_root: &Path) -> Analysis {
        let asts: Vec<FileAst> = files.iter().map(ast::parse_file).collect();
        let deps = workspace_deps(workspace_root).unwrap_or_default();
        let graph = CallGraph::build(&asts, &deps);
        Analysis { files, asts, graph }
    }

    fn def(&self, id: usize) -> &ast::FnDef {
        let n = &self.graph.nodes[id];
        &self.asts[n.file].fns[n.fn_idx]
    }

    fn file(&self, id: usize) -> &SourceFile {
        &self.files[self.graph.nodes[id].file]
    }
}

/// One row of the committed panic verdict table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictEntry {
    /// `crate::Type::fn`.
    pub qualified: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based `fn` line.
    pub line: usize,
    /// `safe` / `allowed` / `panics-via`.
    pub verdict: &'static str,
    /// The shortest offending call chain, for `panics-via`.
    pub chain: Option<String>,
}

/// Everything a deep run produces.
#[derive(Debug, Default)]
pub struct DeepReport {
    /// Blocking findings across all three passes.
    pub findings: Vec<Finding>,
    /// Panic verdicts for every pub fn in library (non-tool) crates.
    pub verdicts: Vec<VerdictEntry>,
    /// Markers the deep passes used (absorbed or suppressed something).
    pub used_markers: BTreeSet<MarkerId>,
}

/// One row of the `DESIGN.md` hot-path table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotEntry {
    /// Fn pattern: `Type::name`, `module::name`, or bare `name`.
    pub pattern: String,
    /// `exempt` rows stop traversal instead of rooting it.
    pub exempt: bool,
    /// The table's justification column (documentation only).
    pub why: String,
}

/// The machine-readable hot-path function set, parsed from `DESIGN.md`
/// (same pattern as the obs event schema).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotPathConfig {
    /// Table rows in order.
    pub entries: Vec<HotEntry>,
}

impl HotPathConfig {
    /// Parses the markdown table under the `### Hot-path functions`
    /// heading. Returns `None` when the section is missing entirely.
    pub fn from_design_md(text: &str) -> Option<HotPathConfig> {
        let mut in_section = false;
        let mut saw_section = false;
        let mut entries = Vec::new();
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with('#') {
                in_section = t.to_ascii_lowercase().contains("hot-path functions");
                saw_section |= in_section;
                continue;
            }
            if !in_section || !t.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
            if cells.len() < 3 {
                continue;
            }
            let pattern = cells[0].trim_matches('`').trim();
            let class = cells[1].trim_matches('`').to_ascii_lowercase();
            if pattern.is_empty()
                || pattern.eq_ignore_ascii_case("function")
                || pattern.chars().all(|c| c == '-' || c == ':' || c == ' ')
            {
                continue; // header / separator row
            }
            if class != "hot" && class != "exempt" {
                continue; // unknown class — the pass reports this via resolution
            }
            entries.push(HotEntry {
                pattern: pattern.to_string(),
                exempt: class == "exempt",
                why: cells[2].to_string(),
            });
        }
        saw_section.then_some(HotPathConfig { entries })
    }
}

/// Runs all three deep passes.
pub fn run_deep(analysis: &Analysis, hot: Option<&HotPathConfig>) -> DeepReport {
    let mut report = DeepReport::default();
    panic_pass(analysis, &mut report);
    if let Some(cfg) = hot {
        hot_path_pass(analysis, cfg, &mut report);
    }
    taint_pass(analysis, &mut report);
    report.findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    report.findings.dedup();
    report
        .verdicts
        .sort_by(|a, b| (&a.qualified, &a.file, a.line).cmp(&(&b.qualified, &b.file, b.line)));
    report
}

/// The suppression covering `(line, one of rules)` in `file`, if any.
fn marker_at(file: &SourceFile, line: usize, rules: &[&str]) -> Option<usize> {
    file.suppressions
        .iter()
        .find(|s| s.lines.contains(&line) && s.rules.iter().any(|r| rules.contains(&r.as_str())))
        .map(|s| s.marker_line)
}

/// A fn-level marker: on the header line or in the contiguous
/// doc/attribute stack directly above it.
fn fn_marker(file: &SourceFile, header_line: usize, rules: &[&str]) -> Option<usize> {
    let mut l = header_line;
    loop {
        if let Some(m) = marker_at(file, l, rules) {
            return Some(m);
        }
        if l <= 1 {
            return None;
        }
        let prev = l - 1;
        if file.doc_lines.contains(&prev) || file.attr_lines.contains(&prev) {
            l = prev;
            continue;
        }
        return None;
    }
}

fn site_label(analysis: &Analysis, id: usize, site: &ast::Site) -> String {
    format!(
        "{} ({}:{})",
        site.what, analysis.graph.nodes[id].rel_path, site.line
    )
}

/// Renders `chain_ids` (caller → … → offender) plus the site.
fn render_chain(analysis: &Analysis, chain: &[(usize, Option<usize>)], site: &ast::Site) -> String {
    let mut parts = Vec::new();
    for &(id, call_line) in chain {
        let n = &analysis.graph.nodes[id];
        match call_line {
            Some(l) => parts.push(format!("{} ({}:{})", n.qualified(), n.rel_path, l)),
            None => parts.push(n.qualified().to_string()),
        }
    }
    let last = chain.last().map(|&(id, _)| id).unwrap_or(0);
    format!(
        "{} -> {}",
        parts.join(" -> "),
        site_label(analysis, last, site)
    )
}

// ---------------------------------------------------------------------
// Pass 1: panic reachability
// ---------------------------------------------------------------------

fn panic_pass(analysis: &Analysis, report: &mut DeepReport) {
    let g = &analysis.graph;
    let n = g.nodes.len();
    let panic_rules: &[&str] = &[PANIC_RULE, "no-unwrap-in-lib"];

    let mut fn_allow: Vec<Option<usize>> = vec![None; n];
    let mut unallowed_site: Vec<Option<usize>> = vec![None; n]; // site index
    let mut has_allowed_site = vec![false; n];
    let mut any_site = vec![false; n];
    for id in 0..n {
        let node = &g.nodes[id];
        let def = analysis.def(id);
        let file = analysis.file(id);
        fn_allow[id] = fn_marker(file, def.line, &[PANIC_RULE]);
        for (si, s) in def.sites.iter().enumerate() {
            if s.kind != SiteKind::Panic {
                continue;
            }
            any_site[id] = true;
            if s.allowed {
                has_allowed_site[id] = true;
                if node.is_lib && !node.is_test {
                    if let Some(m) = marker_at(file, s.line, panic_rules) {
                        report.used_markers.insert((file.rel_path.clone(), m));
                    }
                }
            } else if unallowed_site[id].is_none() {
                unallowed_site[id] = Some(si);
            }
        }
    }

    let rev = g.reverse_edges();

    // BFS 1: which fns reach an unallowed hatch through non-allowed fns.
    let mut panicky = vec![false; n];
    let mut next: Vec<Option<(usize, usize)>> = vec![None; n]; // (toward-panic node, call line)
    let mut queue = VecDeque::new();
    for id in 0..n {
        if unallowed_site[id].is_some() && fn_allow[id].is_none() {
            panicky[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(u) = queue.pop_front() {
        for e in &rev[u] {
            let c = e.to;
            if panicky[c] || fn_allow[c].is_some() {
                continue;
            }
            panicky[c] = true;
            next[c] = Some((u, e.line));
            queue.push_back(c);
        }
    }

    // BFS 2: which non-panicky fns reach an *allowed* hatch or fn.
    let mut allowed_reach = vec![false; n];
    let mut queue = VecDeque::new();
    for id in 0..n {
        if !panicky[id] && (fn_allow[id].is_some() || has_allowed_site[id]) {
            allowed_reach[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(u) = queue.pop_front() {
        for e in &rev[u] {
            let c = e.to;
            if panicky[c] || allowed_reach[c] {
                continue;
            }
            allowed_reach[c] = true;
            queue.push_back(c);
        }
    }

    // BFS 3 (marker staleness only): raw reachability to *any* hatch,
    // ignoring absorption — a fn-level allow is "used" iff the fn could
    // reach a hatch at all.
    let mut reach_any = vec![false; n];
    let mut queue = VecDeque::new();
    for id in 0..n {
        if any_site[id] {
            reach_any[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(u) = queue.pop_front() {
        for e in &rev[u] {
            if !reach_any[e.to] {
                reach_any[e.to] = true;
                queue.push_back(e.to);
            }
        }
    }
    for id in 0..n {
        if let Some(m) = fn_allow[id] {
            if reach_any[id] {
                report
                    .used_markers
                    .insert((analysis.file(id).rel_path.clone(), m));
            }
        }
    }

    // Verdicts + findings for pub fns of library (non-tool) crates.
    for id in 0..n {
        let node = &g.nodes[id];
        if !node.is_lib
            || node.is_test
            || !node.is_pub
            || TOOL_CRATES.contains(&node.crate_name.as_str())
        {
            continue;
        }
        let def = analysis.def(id);
        if !def.has_body {
            continue; // trait signatures get their verdict via implementors
        }
        let (verdict, chain): (&'static str, Option<String>) = if panicky[id] {
            // Reconstruct the shortest chain.
            let mut ids = vec![(id, None)];
            let mut cur = id;
            while let Some((to, line)) = next[cur] {
                if let Some(e) = ids.last_mut() {
                    e.1 = Some(line);
                }
                ids.push((to, None));
                cur = to;
            }
            let site = &analysis.def(cur).sites[unallowed_site[cur].unwrap_or(0)];
            ("panics-via", Some(render_chain(analysis, &ids, site)))
        } else if fn_allow[id].is_some() || has_allowed_site[id] || allowed_reach[id] {
            ("allowed", None)
        } else {
            ("safe", None)
        };
        if verdict == "panics-via" {
            report.findings.push(Finding {
                rule: PANIC_RULE,
                path: node.rel_path.clone(),
                line: node.line,
                message: format!(
                    "pub fn `{}` can panic: {}",
                    node.qualified(),
                    chain.clone().unwrap_or_default()
                ),
            });
        }
        report.verdicts.push(VerdictEntry {
            qualified: node.qualified(),
            file: node.rel_path.clone(),
            line: node.line,
            verdict,
            chain,
        });
    }
}

// ---------------------------------------------------------------------
// Pass 2: hot-path allocation
// ---------------------------------------------------------------------

fn hot_path_pass(analysis: &Analysis, cfg: &HotPathConfig, report: &mut DeepReport) {
    let g = &analysis.graph;
    let n = g.nodes.len();

    let mut exempt = vec![false; n];
    let mut roots: Vec<(usize, String)> = Vec::new();
    for entry in &cfg.entries {
        let ids = g.find(&analysis.asts, &entry.pattern);
        if ids.is_empty() && !entry.exempt {
            report.findings.push(Finding {
                rule: HOT_RULE,
                path: "DESIGN.md".to_string(),
                line: 0,
                message: format!(
                    "hot-path table names `{}` but no workspace fn matches it",
                    entry.pattern
                ),
            });
            continue;
        }
        for id in ids {
            if entry.exempt {
                exempt[id] = true;
            } else {
                roots.push((id, entry.pattern.clone()));
            }
        }
    }

    // Traversal stops: exempt rows, Workspace-owned constructors, the
    // obs crate (trace-gated), fn-level allows.
    let mut stop = vec![false; n];
    let mut fn_allow: Vec<Option<usize>> = vec![None; n];
    for id in 0..n {
        let node = &g.nodes[id];
        let def = analysis.def(id);
        fn_allow[id] = fn_marker(analysis.file(id), def.line, &[HOT_RULE]);
        stop[id] = exempt[id]
            || node.crate_name == "obs"
            || def.self_type.as_deref() == Some("Workspace")
            || fn_allow[id].is_some();
    }

    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut reachable_any = vec![false; n];
    for (root, pattern) in &roots {
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[*root] = true;
        queue.push_back(*root);
        while let Some(u) = queue.pop_front() {
            reachable_any[u] = true;
            let def = analysis.def(u);
            let file = analysis.file(u);
            for s in &def.sites {
                if s.kind != SiteKind::Alloc {
                    continue;
                }
                if s.allowed {
                    if let Some(m) = marker_at(file, s.line, &[HOT_RULE]) {
                        report.used_markers.insert((file.rel_path.clone(), m));
                    }
                    continue;
                }
                if !reported.insert((u, s.line)) {
                    continue;
                }
                let chain = chain_from(*root, u, &prev);
                report.findings.push(Finding {
                    rule: HOT_RULE,
                    path: g.nodes[u].rel_path.clone(),
                    line: s.line,
                    message: format!(
                        "hot path `{pattern}` reaches allocation: {}",
                        render_chain(analysis, &chain, s)
                    ),
                });
            }
            for e in &g.edges[u] {
                let v = e.to;
                if seen[v] {
                    continue;
                }
                if stop[v] {
                    if let Some(m) = fn_allow[v] {
                        report
                            .used_markers
                            .insert((analysis.file(v).rel_path.clone(), m));
                    }
                    continue;
                }
                seen[v] = true;
                prev[v] = Some((u, e.line));
                queue.push_back(v);
            }
        }
    }
    // Line-level allows on unreachable fns are stale only w.r.t. this
    // pass; fn-level allows on unreachable fns likewise stay unused.
    let _ = reachable_any;
}

/// Root → … → `target` chain from forward-BFS `prev` pointers, as
/// `(node, call-line-into-next)` pairs.
fn chain_from(
    root: usize,
    target: usize,
    prev: &[Option<(usize, usize)>],
) -> Vec<(usize, Option<usize>)> {
    let mut rev = vec![(target, None)];
    let mut cur = target;
    while cur != root {
        match prev[cur] {
            Some((p, line)) => {
                rev.push((p, Some(line)));
                cur = p;
            }
            None => break,
        }
    }
    rev.reverse();
    rev
}

// ---------------------------------------------------------------------
// Pass 3: determinism taint
// ---------------------------------------------------------------------

fn taint_pass(analysis: &Analysis, report: &mut DeepReport) {
    let g = &analysis.graph;
    let n = g.nodes.len();
    let taint_rules: &[&str] = &[TAINT_RULE, "determinism"];

    let mut roots = Vec::new();
    let mut stop = vec![false; n];
    let mut fn_allow: Vec<Option<usize>> = vec![None; n];
    for id in 0..n {
        let node = &g.nodes[id];
        let def = analysis.def(id);
        fn_allow[id] = fn_marker(analysis.file(id), def.line, &[TAINT_RULE]);
        stop[id] = node.crate_name == "obs" || fn_allow[id].is_some();
        if node.is_lib
            && !node.is_test
            && def.has_body
            && TAINT_ROOTS.contains(&node.name.as_str())
            && !TOOL_CRATES.contains(&node.crate_name.as_str())
        {
            roots.push(id);
        }
    }

    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    for root in roots {
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[root] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            let def = analysis.def(u);
            let file = analysis.file(u);
            for s in &def.sites {
                if s.kind != SiteKind::Taint {
                    continue;
                }
                if s.allowed {
                    if let Some(m) = marker_at(file, s.line, taint_rules) {
                        report.used_markers.insert((file.rel_path.clone(), m));
                    }
                    continue;
                }
                if !reported.insert((u, s.line)) {
                    continue;
                }
                let chain = chain_from(root, u, &prev);
                report.findings.push(Finding {
                    rule: TAINT_RULE,
                    path: g.nodes[u].rel_path.clone(),
                    line: s.line,
                    message: format!(
                        "nondeterminism source reachable from `{}`: {}",
                        g.nodes[root].qualified(),
                        render_chain(analysis, &chain, s)
                    ),
                });
            }
            for e in &g.edges[u] {
                let v = e.to;
                if seen[v] {
                    continue;
                }
                if stop[v] {
                    if let Some(m) = fn_allow[v] {
                        report
                            .used_markers
                            .insert((analysis.file(v).rel_path.clone(), m));
                    }
                    continue;
                }
                seen[v] = true;
                prev[v] = Some((u, e.line));
                queue.push_back(v);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stale-allow detection
// ---------------------------------------------------------------------

/// Rules whose usage only the deep passes can decide.
const DEEP_ONLY: &[&str] = &[PANIC_RULE, HOT_RULE, TAINT_RULE];

/// Flags suppression markers that suppressed nothing: neither the
/// line-level engine (`line_used`) nor the deep passes (`deep_used`)
/// consumed them. `have_schema` exempts `obs-event-schema` markers when
/// no schema was loaded (their findings cannot be evaluated).
pub fn stale_allows(
    files: &[SourceFile],
    line_used: &BTreeSet<MarkerId>,
    deep_used: &BTreeSet<MarkerId>,
    have_schema: bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        for s in &file.suppressions {
            if s.rules.is_empty() {
                continue; // malformed — the line engine reports these
            }
            if !have_schema && s.rules.iter().any(|r| r == "obs-event-schema") {
                continue;
            }
            let id: MarkerId = (file.rel_path.clone(), s.marker_line);
            if line_used.contains(&id) || deep_used.contains(&id) {
                continue;
            }
            out.push(Finding {
                rule: STALE_RULE,
                path: file.rel_path.clone(),
                line: s.marker_line,
                message: format!(
                    "allow({}) suppresses nothing — delete the stale marker{}",
                    s.rules.join(", "),
                    if s.rules.iter().any(|r| DEEP_ONLY.contains(&r.as_str())) {
                        " (checked by the deep passes)"
                    } else {
                        ""
                    }
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// The markers the *line-level* engine used, derived from its
/// suppressed-findings list.
pub fn line_used_markers(files: &[SourceFile], suppressed: &[Finding]) -> BTreeSet<MarkerId> {
    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    let mut used = BTreeSet::new();
    for f in suppressed {
        if let Some(file) = by_path.get(f.path.as_str()) {
            if let Some(m) = marker_at(file, f.line, &[f.rule]) {
                used.insert((f.path.clone(), m));
            }
        }
    }
    used
}

/// True when `s` could ever apply to test-only code (markers inside
/// `#[cfg(test)]` spans are exempt from staleness — the line rules skip
/// test code wholesale, so usage cannot be observed).
pub fn marker_in_test_code(file: &SourceFile, s: &Suppression) -> bool {
    file.in_test_code(s.marker_line)
}

// ---------------------------------------------------------------------
// Panic report serialization + baseline diff
// ---------------------------------------------------------------------

/// Renders the verdict table as the committed `lint-panic-report.json`
/// (sorted, diffable, one object per pub fn).
pub fn panic_report_json(verdicts: &[VerdictEntry]) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"fns\": [\n");
    for (i, v) in verdicts.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \"verdict\": \"{}\"{}}}{}\n",
            crate::json_escape(&v.qualified),
            crate::json_escape(&v.file),
            v.line,
            v.verdict,
            match &v.chain {
                Some(c) => format!(", \"chain\": \"{}\"", crate::json_escape(c)),
                None => String::new(),
            },
            if i + 1 < verdicts.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Compares fresh verdicts against a committed baseline report. Returns
/// human-readable gate violations: a fn that is `panics-via` now but was
/// not in the baseline (or is new) fails; improvements do not.
pub fn diff_baseline(
    verdicts: &[VerdictEntry],
    baseline_text: &str,
) -> Result<Vec<String>, String> {
    let parsed = eadrl_obs::json::parse(baseline_text)
        .map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
    let mut old: BTreeMap<String, String> = BTreeMap::new();
    if let Some(fns) = parsed.get("fns").and_then(|v| v.as_arr()) {
        for f in fns {
            let (Some(name), Some(verdict)) = (
                f.get("fn").and_then(|v| v.as_str()),
                f.get("verdict").and_then(|v| v.as_str()),
            ) else {
                continue;
            };
            let file = f.get("file").and_then(|v| v.as_str()).unwrap_or("");
            old.insert(format!("{name}@{file}"), verdict.to_string());
        }
    }
    let mut errors = Vec::new();
    for v in verdicts {
        if v.verdict != "panics-via" {
            continue;
        }
        let key = format!("{}@{}", v.qualified, v.file);
        match old.get(&key).map(String::as_str) {
            Some("panics-via") => {} // pre-existing, already visible in the committed report
            Some(prev) => errors.push(format!(
                "`{}` regressed {prev} -> panics-via: {}",
                v.qualified,
                v.chain.clone().unwrap_or_default()
            )),
            None => errors.push(format!(
                "new panic-reachable pub fn `{}`: {}",
                v.qualified,
                v.chain.clone().unwrap_or_default()
            )),
        }
    }
    Ok(errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(files: &[(&str, &str)]) -> Analysis {
        let files: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        Analysis::from_files(files, Path::new("/nonexistent"))
    }

    #[test]
    fn panic_chain_is_shortest_and_reported() {
        let a = analyze(&[(
            "crates/mini/src/lib.rs",
            "pub fn entry(v: Option<u8>) { middle(v); }\n\
             fn middle(v: Option<u8>) { bottom(v); }\n\
             fn bottom(v: Option<u8>) { v.unwrap(); }\n",
        )]);
        let r = run_deep(&a, None);
        let entry = r
            .verdicts
            .iter()
            .find(|v| v.qualified == "mini::entry")
            .unwrap();
        assert_eq!(entry.verdict, "panics-via");
        let chain = entry.chain.as_deref().unwrap();
        assert!(chain.contains("mini::entry"), "{chain}");
        assert!(chain.contains("mini::middle"), "{chain}");
        assert!(chain.contains(".unwrap()"), "{chain}");
        assert_eq!(
            r.findings.iter().filter(|f| f.rule == PANIC_RULE).count(),
            1
        );
    }

    #[test]
    fn fn_level_allow_absorbs_the_whole_subtree() {
        let a = analyze(&[(
            "crates/mini/src/lib.rs",
            "pub fn entry(v: Option<u8>) { locked(v); }\n\
             // eadrl-lint: allow(panic-reachable): poisoning needs a prior panic\n\
             pub fn locked(v: Option<u8>) { v.unwrap(); }\n",
        )]);
        let r = run_deep(&a, None);
        let entry = r
            .verdicts
            .iter()
            .find(|v| v.qualified == "mini::entry")
            .unwrap();
        assert_eq!(entry.verdict, "allowed");
        let locked = r
            .verdicts
            .iter()
            .find(|v| v.qualified == "mini::locked")
            .unwrap();
        assert_eq!(locked.verdict, "allowed");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r
            .used_markers
            .contains(&("crates/mini/src/lib.rs".to_string(), 2)));
    }

    #[test]
    fn line_level_allow_still_counts_as_allowed() {
        let a = analyze(&[(
            "crates/mini/src/lib.rs",
            "pub fn entry(v: Option<u8>) {\n\
             \x20   v.unwrap(); // eadrl-lint: allow(no-unwrap-in-lib): checked by caller\n\
             }\n",
        )]);
        let r = run_deep(&a, None);
        let entry = r
            .verdicts
            .iter()
            .find(|v| v.qualified == "mini::entry")
            .unwrap();
        assert_eq!(entry.verdict, "allowed");
        assert!(r.findings.is_empty());
    }

    #[test]
    fn safe_fns_get_safe_verdicts() {
        let a = analyze(&[(
            "crates/mini/src/lib.rs",
            "pub fn add(a: u64, b: u64) -> u64 { a.wrapping_add(b) }\n",
        )]);
        let r = run_deep(&a, None);
        assert_eq!(r.verdicts[0].verdict, "safe");
    }

    #[test]
    fn hot_path_alloc_found_transitively_with_chain() {
        let design = "### Hot-path functions\n\n| Function | Class | Why |\n|---|---|---|\n| `mini::step` | hot | inner loop |\n| `mini::setup` | exempt | construction |\n";
        let cfg = HotPathConfig::from_design_md(design).unwrap();
        let a = analyze(&[(
            "crates/mini/src/lib.rs",
            "pub fn step(out: &mut Vec<f64>) { helper(out); setup(); }\n\
             fn helper(out: &mut Vec<f64>) { out.push(1.0); }\n\
             pub fn setup() -> Vec<f64> { Vec::new() }\n",
        )]);
        let r = run_deep(&a, Some(&cfg));
        let hot: Vec<_> = r.findings.iter().filter(|f| f.rule == HOT_RULE).collect();
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert!(
            hot[0].message.contains("mini::helper"),
            "{}",
            hot[0].message
        );
        assert!(hot[0].message.contains(".push()"), "{}", hot[0].message);
    }

    #[test]
    fn unresolvable_hot_row_is_a_finding() {
        let design = "### Hot-path functions\n\n| Function | Class | Why |\n|---|---|---|\n| `mini::no_such_fn` | hot | typo |\n";
        let cfg = HotPathConfig::from_design_md(design).unwrap();
        let a = analyze(&[("crates/mini/src/lib.rs", "pub fn real() {}\n")]);
        let r = run_deep(&a, Some(&cfg));
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == HOT_RULE && f.message.contains("no_such_fn")));
    }

    #[test]
    fn taint_flows_from_predict_root_unless_gated() {
        let a = analyze(&[(
            "crates/mini/src/lib.rs",
            "pub struct M;\nimpl M {\n\
             \x20   pub fn predict(&self) -> f64 { seed() }\n\
             }\n\
             fn seed() -> f64 { let t = Instant::now(); 0.0 }\n",
        )]);
        let r = run_deep(&a, None);
        let taint: Vec<_> = r.findings.iter().filter(|f| f.rule == TAINT_RULE).collect();
        assert_eq!(taint.len(), 1, "{taint:?}");
        assert!(taint[0].message.contains("Instant::now"));
        assert!(taint[0].message.contains("mini::M::predict"));
    }

    #[test]
    fn taint_allowed_by_line_marker_uses_it() {
        let a = analyze(&[(
            "crates/mini/src/lib.rs",
            "pub fn fit() { clocked(); }\n\
             fn clocked() {\n\
             \x20   // eadrl-lint: allow(determinism): timing is the payload\n\
             \x20   let t = Instant::now();\n\
             }\n",
        )]);
        let r = run_deep(&a, None);
        assert!(r.findings.iter().all(|f| f.rule != TAINT_RULE));
        assert!(r
            .used_markers
            .contains(&("crates/mini/src/lib.rs".to_string(), 3)));
    }

    #[test]
    fn hot_config_parses_design_table() {
        let md = "# Design\n\n### Hot-path functions\n\nProse.\n\n| Function | Class | Why |\n|----------|-------|-----|\n| `Dense::forward_batch` | hot | per-minibatch |\n| `Workspace::take` | exempt | arena |\n\n### Next section\n\n| Other | table | here |\n";
        let cfg = HotPathConfig::from_design_md(md).unwrap();
        assert_eq!(cfg.entries.len(), 2);
        assert_eq!(cfg.entries[0].pattern, "Dense::forward_batch");
        assert!(!cfg.entries[0].exempt);
        assert!(cfg.entries[1].exempt);
        assert!(HotPathConfig::from_design_md("# nope\n").is_none());
    }

    #[test]
    fn report_roundtrips_through_baseline_diff() {
        let verdicts = vec![
            VerdictEntry {
                qualified: "mini::ok".into(),
                file: "crates/mini/src/lib.rs".into(),
                line: 1,
                verdict: "safe",
                chain: None,
            },
            VerdictEntry {
                qualified: "mini::bad".into(),
                file: "crates/mini/src/lib.rs".into(),
                line: 5,
                verdict: "panics-via",
                chain: Some("mini::bad -> .unwrap() (crates/mini/src/lib.rs:6)".into()),
            },
        ];
        let json = panic_report_json(&verdicts);
        // Same verdicts vs their own report: no errors.
        assert_eq!(
            diff_baseline(&verdicts, &json).unwrap(),
            Vec::<String>::new()
        );
        // A fresh regression against a baseline that had it safe: error.
        let mut worse = verdicts.clone();
        worse[0].verdict = "panics-via";
        worse[0].chain = Some("mini::ok -> panic! (x:1)".into());
        let errs = diff_baseline(&worse, &json).unwrap();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("regressed"));
        // A brand-new panicking fn: error.
        let mut extra = verdicts.clone();
        extra.push(VerdictEntry {
            qualified: "mini::newbad".into(),
            file: "crates/mini/src/lib.rs".into(),
            line: 9,
            verdict: "panics-via",
            chain: None,
        });
        let errs = diff_baseline(&extra, &json).unwrap();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("new panic-reachable"));
    }

    #[test]
    fn stale_markers_are_flagged_and_used_ones_are_not() {
        let files = vec![SourceFile::parse(
            "crates/mini/src/lib.rs",
            "fn f() {}\n// eadrl-lint: allow(no-float-eq): nothing here anymore\nfn g() {}\n",
        )];
        let stale = stale_allows(&files, &BTreeSet::new(), &BTreeSet::new(), true);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, STALE_RULE);
        assert_eq!(stale[0].line, 2);
        let mut used = BTreeSet::new();
        used.insert(("crates/mini/src/lib.rs".to_string(), 2));
        assert!(stale_allows(&files, &used, &BTreeSet::new(), true).is_empty());
    }
}
