//! Partial least squares (PLS1) regression via the NIPALS algorithm.

use crate::matrix::Matrix;
use crate::vector::{dot, norm2};
use crate::{LinalgError, Result};

/// A fitted PLS1 regression model (single response variable).
///
/// Implements the classic NIPALS deflation scheme: each component extracts
/// the direction in X-space with maximal covariance with the (deflated)
/// response. Backs the PLS base forecaster in `eadrl-models`.
#[derive(Debug, Clone)]
pub struct PlsModel {
    x_mean: Vec<f64>,
    y_mean: f64,
    /// Final regression coefficients in the original (centered) X space.
    coefficients: Vec<f64>,
    n_components: usize,
}

impl PlsModel {
    /// Fits a PLS1 model with `n_components` latent components.
    ///
    /// `n_components` is clamped to `min(features, samples - 1)`. Requires
    /// at least two samples.
    pub fn fit(x: &Matrix, y: &[f64], n_components: usize) -> Result<Self> {
        let (n, d) = x.shape();
        if n != y.len() {
            return Err(LinalgError::ShapeMismatch {
                context: format!("PLS: {n} samples vs {} targets", y.len()),
            });
        }
        if n < 2 {
            return Err(LinalgError::ShapeMismatch {
                context: format!("PLS needs >= 2 samples, got {n}"),
            });
        }
        let k = n_components.clamp(1, d.min(n - 1));

        // Center X and y.
        let mut x_mean = vec![0.0; d];
        for i in 0..n {
            for (m, &v) in x_mean.iter_mut().zip(x.row(i).iter()) {
                *m += v;
            }
        }
        for m in x_mean.iter_mut() {
            *m /= n as f64;
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;

        let mut e = x.clone(); // X residual
        for i in 0..n {
            for (v, m) in e.row_mut(i).iter_mut().zip(x_mean.iter()) {
                *v -= m;
            }
        }
        let mut f: Vec<f64> = y.iter().map(|v| v - y_mean).collect(); // y residual

        // NIPALS components.
        let mut weights: Vec<Vec<f64>> = Vec::with_capacity(k); // w_j
        let mut loadings: Vec<Vec<f64>> = Vec::with_capacity(k); // p_j
        let mut y_loadings: Vec<f64> = Vec::with_capacity(k); // q_j

        for _ in 0..k {
            // w = Eᵀ f / ||Eᵀ f||
            let mut w = e.tr_matvec(&f)?;
            let wn = norm2(&w);
            if wn < 1e-12 {
                break; // No covariance left to extract.
            }
            for v in w.iter_mut() {
                *v /= wn;
            }
            // Scores t = E w
            let t = e.matvec(&w)?;
            let tt = dot(&t, &t);
            if tt < 1e-12 {
                break;
            }
            // Loadings p = Eᵀ t / (tᵀt), q = fᵀ t / (tᵀt)
            let mut p = e.tr_matvec(&t)?;
            for v in p.iter_mut() {
                *v /= tt;
            }
            let q = dot(&f, &t) / tt;
            // Deflate: E -= t pᵀ ; f -= q t
            for i in 0..n {
                let ti = t[i];
                for (ev, &pv) in e.row_mut(i).iter_mut().zip(p.iter()) {
                    *ev -= ti * pv;
                }
                f[i] -= q * t[i];
            }
            weights.push(w);
            loadings.push(p);
            y_loadings.push(q);
        }

        let actual_k = weights.len();
        if actual_k == 0 {
            // y had no covariance with X at all; predict the mean.
            return Ok(PlsModel {
                x_mean,
                y_mean,
                coefficients: vec![0.0; d],
                n_components: 0,
            });
        }

        // β = W (PᵀW)⁻¹ q, computed with the small k x k system. The
        // allocating `transpose` is fine here: this runs once per fit on a
        // k x d matrix, not in a per-update hot loop (those go through
        // `transpose_into` with a reused buffer).
        let w_mat = Matrix::from_rows(&weights)?.transpose(); // d x k
        let p_mat = Matrix::from_rows(&loadings)?; // k x d
        let ptw = p_mat.matmul(&w_mat)?; // k x k
        let lu = crate::decompose::Lu::new(&ptw)?;
        let inner = lu.solve(&y_loadings)?; // (PᵀW)⁻¹ q
        let coefficients = w_mat.matvec(&inner)?;

        Ok(PlsModel {
            x_mean,
            y_mean,
            coefficients,
            n_components: actual_k,
        })
    }

    /// Predicts the response for one sample.
    pub fn predict_one(&self, sample: &[f64]) -> Result<f64> {
        if sample.len() != self.x_mean.len() {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "PLS predict: {} features vs fitted {}",
                    sample.len(),
                    self.x_mean.len()
                ),
            });
        }
        let centered: f64 = sample
            .iter()
            .zip(self.x_mean.iter())
            .zip(self.coefficients.iter())
            .map(|((v, m), c)| (v - m) * c)
            .sum();
        Ok(self.y_mean + centered)
    }

    /// Number of latent components actually extracted.
    pub fn n_components(&self) -> usize {
        self.n_components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2 x0 - x1 + 3
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64 * 0.3, ((i * 7) % 11) as f64 * 0.5])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 3.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let pls = PlsModel::fit(&x, &y, 2).unwrap();
        for (r, target) in rows.iter().zip(y.iter()) {
            assert!((pls.predict_one(r).unwrap() - target).abs() < 1e-8);
        }
    }

    #[test]
    fn one_component_on_collinear_data_works() {
        // x1 = 2 x0: PCA/OLS-unfriendly, PLS handles it with one component.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 5.0 * i as f64 + 1.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let pls = PlsModel::fit(&x, &y, 1).unwrap();
        for (r, target) in rows.iter().zip(y.iter()) {
            assert!((pls.predict_one(r).unwrap() - target).abs() < 1e-6);
        }
    }

    #[test]
    fn constant_response_predicts_mean() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let y = vec![4.2; 10];
        let x = Matrix::from_rows(&rows).unwrap();
        let pls = PlsModel::fit(&x, &y, 2).unwrap();
        assert_eq!(pls.n_components(), 0);
        assert!((pls.predict_one(&[100.0, 5.0]).unwrap() - 4.2).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let x = Matrix::zeros(5, 2);
        assert!(PlsModel::fit(&x, &[1.0; 4], 1).is_err());
        let ok_y = [1.0, 2.0, 3.0, 4.0, 5.0];
        let pls = PlsModel::fit(&x, &ok_y, 1).unwrap();
        assert!(pls.predict_one(&[1.0]).is_err());
    }
}
