//! Regenerates **Table I**: the 20 evaluation datasets and their
//! characteristics (synthetic structural equivalents; see DESIGN.md).
//!
//! ```text
//! cargo run -p eadrl-bench --release --bin table1
//! ```

use eadrl_bench::{all_series, table1_rows, Scale};
use eadrl_eval::render_table;

fn main() {
    let scale = Scale::from_args();
    let series = all_series(scale);
    let rows: Vec<Vec<String>> = table1_rows()
        .into_iter()
        .zip(series.iter())
        .map(|((num, name, source, freq, chars), s)| {
            vec![
                num.to_string(),
                name,
                source,
                freq,
                format!("{}", s.len()),
                format!("{:.2}", s.mean()),
                format!("{:.2}", s.std_dev()),
                chars,
            ]
        })
        .collect();
    println!("Table I - datasets used for the experiments (synthetic reproductions)\n");
    println!(
        "{}",
        render_table(
            &[
                "ID",
                "Time-series",
                "Data source",
                "Frequency",
                "n",
                "mean",
                "std",
                "Synthetic structure"
            ],
            &rows,
        )
    );
}
