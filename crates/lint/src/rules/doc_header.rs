//! `doc-header`: the numeric substrate stays documented.
//!
//! `linalg` and `timeseries` sit under every model and every metric in
//! the workspace; an undocumented public function there forces every
//! caller to read the implementation to learn its numerical contract
//! (tolerances, edge cases, shapes). Every `pub fn` / `pub struct` in
//! those two crates must carry a doc comment. (`pub(crate)` and friends
//! are internal API and exempt.)

use crate::lexer::TokenKind;
use crate::rules::{Finding, LintContext, Rule};
use crate::source::SourceFile;

/// Crates whose public items must be documented.
const SCOPE: &[&str] = &["crates/linalg/src/", "crates/timeseries/src/"];

/// See module docs.
pub struct DocHeader;

impl Rule for DocHeader {
    fn name(&self) -> &'static str {
        "doc-header"
    }

    fn description(&self) -> &'static str {
        "every pub fn / pub struct in linalg and timeseries carries a doc comment"
    }

    fn check(&self, file: &SourceFile, _ctx: &LintContext, out: &mut Vec<Finding>) {
        if !file.in_any(SCOPE) {
            return;
        }
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || t.text != "pub" || file.in_test_code(t.line) {
                continue;
            }
            // Plain `pub` only: `pub(crate)` etc. are internal.
            let Some(next) = toks.get(i + 1) else {
                continue;
            };
            if next.kind == TokenKind::Punct && next.text == "(" {
                continue;
            }
            let (item, name) = match (next.text.as_str(), toks.get(i + 2)) {
                ("fn" | "struct", Some(n)) if n.kind == TokenKind::Ident => {
                    (next.text.clone(), n.text.clone())
                }
                _ => continue,
            };
            // Walk upward from the `pub` line: attribute lines are
            // transparent; a doc line means documented; anything else
            // (code, blank, plain comment) means undocumented.
            let mut line = t.line;
            let documented = loop {
                if line <= 1 {
                    break false;
                }
                line -= 1;
                if file.doc_lines.contains(&line) {
                    break true;
                }
                if file.attr_lines.contains(&line) {
                    continue;
                }
                break false;
            };
            if !documented {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "pub {item} `{name}` has no doc comment — state its contract (shapes, tolerances, edge cases)"
                    ),
                });
            }
        }
    }
}
