//! Gradient boosting machines with regression-tree base learners
//! (Friedman's least-squares boosting).

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use crate::tree::TreeRegressor;

/// Least-squares gradient boosting: starts from the target mean and
/// repeatedly fits a shallow CART tree to the current residuals, adding it
/// with shrinkage `learning_rate`.
#[derive(Debug, Clone)]
pub struct GbmRegressor {
    n_rounds: usize,
    max_depth: usize,
    learning_rate: f64,
    base: f64,
    trees: Vec<TreeRegressor>,
}

impl GbmRegressor {
    /// Creates an unfitted booster.
    pub fn new(n_rounds: usize, max_depth: usize, learning_rate: f64) -> Self {
        GbmRegressor {
            n_rounds: n_rounds.max(1),
            max_depth: max_depth.max(1),
            learning_rate: learning_rate.clamp(1e-4, 1.0),
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Number of boosting rounds actually fitted.
    pub fn n_fitted_rounds(&self) -> usize {
        self.trees.len()
    }
}

impl TabularModel for GbmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        self.base = targets.iter().sum::<f64>() / targets.len() as f64;
        self.trees.clear();
        let mut residuals: Vec<f64> = targets.iter().map(|t| t - self.base).collect();
        for _ in 0..self.n_rounds {
            let mut tree = TreeRegressor::new(self.max_depth, 3);
            tree.fit(inputs, &residuals)?;
            // Update residuals; stop early once they are essentially zero.
            let mut max_abs: f64 = 0.0;
            for (r, x) in residuals.iter_mut().zip(inputs.iter()) {
                *r -= self.learning_rate * tree.predict(x);
                max_abs = max_abs.max(r.abs());
            }
            self.trees.push(tree);
            if max_abs < 1e-10 {
                break;
            }
        }
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(input)).sum::<f64>()
    }
}

/// A GBM forecaster over embedded windows (paper family **GBM**).
pub fn gradient_boosting(
    k: usize,
    n_rounds: usize,
    max_depth: usize,
    learning_rate: f64,
) -> Windowed<GbmRegressor> {
    Windowed::new(
        format!("GBM(n={n_rounds},d={max_depth},lr={learning_rate})"),
        k,
        GbmRegressor::new(n_rounds, max_depth, learning_rate),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    #[test]
    fn boosting_reduces_training_error_over_rounds() {
        let inputs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x[0].sin() * 3.0).collect();
        let err = |rounds: usize| {
            let mut g = GbmRegressor::new(rounds, 2, 0.3);
            g.fit(&inputs, &targets).unwrap();
            inputs
                .iter()
                .zip(targets.iter())
                .map(|(x, t)| (g.predict(x) - t).powi(2))
                .sum::<f64>()
        };
        let e1 = err(1);
        let e20 = err(20);
        let e100 = err(100);
        assert!(e20 < e1);
        assert!(e100 <= e20);
        assert!(e100 < 0.1 * e1, "e1={e1}, e100={e100}");
    }

    #[test]
    fn zero_rounds_clamps_to_one() {
        let g = GbmRegressor::new(0, 2, 0.1);
        assert_eq!(g.n_rounds, 1);
    }

    #[test]
    fn constant_targets_converge_immediately() {
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets = vec![7.5; 20];
        let mut g = GbmRegressor::new(50, 3, 0.5);
        g.fit(&inputs, &targets).unwrap();
        // Early stopping on zero residuals.
        assert!(g.n_fitted_rounds() <= 2);
        assert!((g.predict(&[5.0]) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn gbm_forecaster_fits_trend_cycle() {
        let series: Vec<f64> = (0..250)
            .map(|t| 0.02 * t as f64 + (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin() * 4.0)
            .collect();
        let mut m = gradient_boosting(5, 80, 3, 0.1);
        m.fit(&series).unwrap();
        let pred = m.predict_next(&series);
        let truth = 0.02 * 250.0 + (2.0 * std::f64::consts::PI * 250.0 / 24.0).sin() * 4.0;
        assert!((pred - truth).abs() < 1.5, "pred {pred} truth {truth}");
    }

    #[test]
    fn unfitted_predicts_zero_base() {
        let g = GbmRegressor::new(10, 2, 0.1);
        assert_eq!(g.predict(&[1.0]), 0.0);
    }
}
