//! Ablation microbenchmarks for the design decisions called out in
//! DESIGN.md: reward computation (rank vs NRMSE), action squash variants,
//! and the window size ω.

use eadrl_bench::harness::Harness;
use eadrl_bench::{build_pool, fit_pool, prediction_matrix, Scale};
use eadrl_core::experiment::sanitize_predictions;
use eadrl_core::{EnsembleEnv, RewardKind};
use eadrl_datasets::{generate, DatasetId};
use eadrl_rl::{ActionSquash, Environment};
use std::hint::black_box;

fn prepared(reward: RewardKind, omega: usize) -> EnsembleEnv {
    let scale = Scale::full();
    let series = generate(DatasetId::BikeRentals, scale.series_len, scale.seed);
    let cut = (series.len() as f64 * 0.75).round() as usize;
    let train = &series.values()[..cut];
    let fit_len = (train.len() as f64 * 0.75).round() as usize;
    let (fit_part, warm_part) = train.split_at(fit_len);
    let pool = fit_pool(build_pool(scale, 24), fit_part);
    let mut preds = prediction_matrix(&pool, fit_part, warm_part);
    sanitize_predictions(&mut preds, fit_part);
    EnsembleEnv::new(preds, warm_part.to_vec(), omega, reward, 1_000_000)
}

fn bench_rewards(c: &mut Harness) {
    let mut group = c.benchmark_group("env_step_reward");
    for (label, reward) in [
        ("rank_eq3", RewardKind::Rank { normalize: true }),
        ("one_minus_nrmse", RewardKind::OneMinusNrmse),
    ] {
        group.bench_function(label, |b| {
            let mut env = prepared(reward, 10);
            let m = env.action_dim();
            let action = vec![1.0 / m as f64; m];
            env.reset();
            b.iter(|| {
                let (_, r, done) = env.step(black_box(&action));
                if done {
                    env.reset();
                }
                black_box(r)
            });
        });
    }
    group.finish();
}

fn bench_squash(c: &mut Harness) {
    let raw: Vec<f64> = (0..43).map(|i| (i as f64 * 0.37).sin() * 2.0).collect();
    let mut group = c.benchmark_group("action_squash");
    for (label, squash) in [
        ("softmax", ActionSquash::Softmax),
        (
            "bounded_softmax",
            ActionSquash::BoundedSoftmax { scale: 6.0 },
        ),
        ("tanh", ActionSquash::Tanh),
    ] {
        group.bench_function(format!("{label}_forward"), |b| {
            b.iter(|| black_box(squash.forward(black_box(&raw))))
        });
        let out = squash.forward(&raw);
        let grad = vec![0.1; raw.len()];
        group.bench_function(format!("{label}_backward"), |b| {
            b.iter(|| black_box(squash.backward(black_box(&raw), &out, &grad)))
        });
    }
    group.finish();
}

fn bench_omega_sweep(c: &mut Harness) {
    let mut group = c.benchmark_group("env_step_omega");
    for omega in [5usize, 10, 20, 40] {
        group.bench_function(format!("{omega}"), |b| {
            let mut env = prepared(RewardKind::Rank { normalize: true }, omega);
            let m = env.action_dim();
            let action = vec![1.0 / m as f64; m];
            env.reset();
            b.iter(|| {
                let (s, _, done) = env.step(black_box(&action));
                if done {
                    env.reset();
                }
                black_box(s.len())
            });
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    bench_rewards(&mut h);
    bench_squash(&mut h);
    bench_omega_sweep(&mut h);
}
