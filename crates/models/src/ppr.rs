//! Projection-pursuit regression (Friedman & Stuetzle).

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use eadrl_linalg::vector::{dot, norm2};
use eadrl_rng::DetRng;

/// One additive ridge term: a unit projection direction plus a cubic
/// polynomial ridge function fitted to the projected residuals.
#[derive(Debug, Clone)]
struct RidgeTerm {
    direction: Vec<f64>,
    /// Polynomial coefficients `c0 + c1 z + c2 z² + c3 z³`.
    poly: [f64; 4],
}

impl RidgeTerm {
    fn eval(&self, x: &[f64]) -> f64 {
        let z = dot(&self.direction, x);
        self.poly[0] + z * (self.poly[1] + z * (self.poly[2] + z * self.poly[3]))
    }
}

/// Projection-pursuit regression: a stagewise sum of ridge functions
/// `Σ_j g_j(w_j · x)`.
///
/// Each stage searches candidate unit directions (coordinate axes plus
/// random directions), fits a cubic ridge function along each by least
/// squares, keeps the direction with the lowest residual SSE, and deflates
/// the residuals. This is the classic PPR recipe with a polynomial
/// smoother standing in for the supersmoother.
#[derive(Debug, Clone)]
pub struct PprRegressor {
    n_terms: usize,
    n_candidates: usize,
    seed: u64,
    mean: f64,
    terms: Vec<RidgeTerm>,
}

impl PprRegressor {
    /// Creates an unfitted PPR model with `n_terms` ridge terms.
    pub fn new(n_terms: usize, seed: u64) -> Self {
        PprRegressor {
            n_terms: n_terms.max(1),
            n_candidates: 24,
            seed,
            mean: 0.0,
            terms: Vec::new(),
        }
    }

    /// Number of fitted ridge terms.
    pub fn n_fitted_terms(&self) -> usize {
        self.terms.len()
    }

    /// Least-squares cubic fit of `res ~ poly(z)`; returns `(poly, sse)`.
    #[allow(clippy::needless_range_loop)] // parallel 4x4 Gaussian elimination
    fn fit_ridge(z: &[f64], res: &[f64]) -> ([f64; 4], f64) {
        // Normal equations for the 4-coefficient polynomial.
        let n = z.len();
        let mut ata = [[0.0_f64; 4]; 4];
        let mut atb = [0.0_f64; 4];
        for i in 0..n {
            let powers = [1.0, z[i], z[i] * z[i], z[i] * z[i] * z[i]];
            for a in 0..4 {
                atb[a] += powers[a] * res[i];
                for b in 0..4 {
                    ata[a][b] += powers[a] * powers[b];
                }
            }
        }
        // Tiny ridge for stability, then Gaussian elimination on the 4x4.
        for (a, row) in ata.iter_mut().enumerate() {
            row[a] += 1e-9;
        }
        let mut m = ata;
        let mut b = atb;
        for col in 0..4 {
            // Partial pivot.
            let mut piv = col;
            for r in col + 1..4 {
                if m[r][col].abs() > m[piv][col].abs() {
                    piv = r;
                }
            }
            m.swap(col, piv);
            b.swap(col, piv);
            if m[col][col].abs() < 1e-30 {
                return ([0.0; 4], f64::INFINITY);
            }
            for r in col + 1..4 {
                let f = m[r][col] / m[col][col];
                for c in col..4 {
                    m[r][c] -= f * m[col][c];
                }
                b[r] -= f * b[col];
            }
        }
        let mut poly = [0.0_f64; 4];
        for col in (0..4).rev() {
            let mut s = b[col];
            for c in col + 1..4 {
                s -= m[col][c] * poly[c];
            }
            poly[col] = s / m[col][col];
        }
        let sse: f64 = (0..n)
            .map(|i| {
                let p = poly[0] + z[i] * (poly[1] + z[i] * (poly[2] + z[i] * poly[3]));
                (res[i] - p) * (res[i] - p)
            })
            .sum();
        (poly, sse)
    }
}

impl TabularModel for PprRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let dim = inputs[0].len();
        let mut rng = DetRng::seed_from_u64(self.seed);
        self.mean = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut residuals: Vec<f64> = targets.iter().map(|t| t - self.mean).collect();
        self.terms.clear();

        for _ in 0..self.n_terms {
            // Candidate directions: coordinate axes + random unit vectors.
            let mut candidates: Vec<Vec<f64>> = (0..dim)
                .map(|j| {
                    let mut e = vec![0.0; dim];
                    e[j] = 1.0;
                    e
                })
                .collect();
            for _ in 0..self.n_candidates {
                let mut d: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
                let n = norm2(&d);
                if n > 1e-9 {
                    for v in d.iter_mut() {
                        *v /= n;
                    }
                    candidates.push(d);
                }
            }
            let mut best: Option<(RidgeTerm, f64)> = None;
            for dir in candidates {
                let z: Vec<f64> = inputs.iter().map(|x| dot(&dir, x)).collect();
                let (poly, sse) = Self::fit_ridge(&z, &residuals);
                if sse.is_finite() && best.as_ref().is_none_or(|(_, b)| sse < *b) {
                    best = Some((
                        RidgeTerm {
                            direction: dir,
                            poly,
                        },
                        sse,
                    ));
                }
            }
            let Some((term, _)) = best else { break };
            for (r, x) in residuals.iter_mut().zip(inputs.iter()) {
                *r -= term.eval(x);
            }
            self.terms.push(term);
        }
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        self.mean + self.terms.iter().map(|t| t.eval(input)).sum::<f64>()
    }
}

/// A PPR forecaster over embedded windows (paper family **PPR**).
pub fn projection_pursuit(k: usize, n_terms: usize, seed: u64) -> Windowed<PprRegressor> {
    Windowed::new(
        format!("PPR(t={n_terms})"),
        k,
        PprRegressor::new(n_terms, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    #[test]
    fn single_term_fits_cubic_along_axis() {
        let inputs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 30.0 - 1.0, 0.0]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x[0].powi(3) - x[0]).collect();
        let mut ppr = PprRegressor::new(1, 1);
        ppr.fit(&inputs, &targets).unwrap();
        for (x, t) in inputs.iter().zip(targets.iter()).step_by(11) {
            assert!((ppr.predict(x) - t).abs() < 0.05, "at {x:?}");
        }
    }

    #[test]
    fn more_terms_reduce_error_on_additive_function() {
        let inputs: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = i as f64 / 50.0 - 1.0;
                vec![t, (i % 10) as f64 / 5.0 - 1.0]
            })
            .collect();
        let targets: Vec<f64> = inputs
            .iter()
            .map(|x| x[0].powi(2) + 0.5 * x[1].powi(3))
            .collect();
        let sse = |terms: usize| {
            let mut ppr = PprRegressor::new(terms, 5);
            ppr.fit(&inputs, &targets).unwrap();
            inputs
                .iter()
                .zip(targets.iter())
                .map(|(x, t)| (ppr.predict(x) - t).powi(2))
                .sum::<f64>()
        };
        assert!(sse(3) < sse(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 * 0.1, -(i as f64) * 0.05])
            .collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x[0] * x[1]).collect();
        let mut a = PprRegressor::new(2, 9);
        let mut b = PprRegressor::new(2, 9);
        a.fit(&inputs, &targets).unwrap();
        b.fit(&inputs, &targets).unwrap();
        assert_eq!(a.predict(&[0.5, 0.5]), b.predict(&[0.5, 0.5]));
    }

    #[test]
    fn ppr_forecaster_runs_on_series() {
        let series: Vec<f64> = (0..150)
            .map(|t| (t as f64 / 8.0).sin() * 3.0 + 20.0)
            .collect();
        let mut m = projection_pursuit(5, 2, 3);
        m.fit(&series).unwrap();
        let p = m.predict_next(&series);
        assert!(p.is_finite());
        assert!((p - 20.0).abs() < 6.0);
    }

    #[test]
    fn unfitted_predicts_zero_mean() {
        let ppr = PprRegressor::new(2, 0);
        assert_eq!(ppr.predict(&[1.0, 2.0]), 0.0);
    }
}
