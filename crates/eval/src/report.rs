//! Win/loss tabulation and ASCII table rendering for the paper's tables.

use crate::bayes::correlated_t_test;

/// One row of the Table II-style pairwise comparison: the reference method
/// (EA-DRL in the paper) against one baseline across all datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseRow {
    /// Baseline name.
    pub method: String,
    /// Datasets where the reference method lost to this baseline.
    pub losses: usize,
    /// … of which significant at the 95 % posterior level.
    pub significant_losses: usize,
    /// Datasets where the reference method won.
    pub wins: usize,
    /// … of which significant.
    pub significant_wins: usize,
    /// Draws (neither side's posterior crossed anything; RMSE tie).
    pub draws: usize,
}

/// Builds the pairwise comparison of a reference method against each
/// baseline, dataset by dataset, with a Bayesian correlated t-test on the
/// per-step squared-error differences deciding significance.
///
/// Inputs are per-dataset: `actuals[d]`, `reference_preds[d]`, and for
/// each baseline `b`, `baseline_preds[b].1[d]`. A "win" for the reference
/// means its RMSE is strictly lower on that dataset; the win is
/// *significant* when `P(reference's squared loss is lower) > threshold`.
pub fn pairwise_table(
    actuals: &[Vec<f64>],
    reference_preds: &[Vec<f64>],
    baseline_preds: &[(String, Vec<Vec<f64>>)],
    rho: f64,
    threshold: f64,
) -> Vec<PairwiseRow> {
    let d = actuals.len();
    assert_eq!(reference_preds.len(), d, "reference predictions misaligned");
    let mut rows = Vec::with_capacity(baseline_preds.len());
    for (name, preds) in baseline_preds {
        assert_eq!(preds.len(), d, "{name} predictions misaligned");
        let mut row = PairwiseRow {
            method: name.clone(),
            losses: 0,
            significant_losses: 0,
            wins: 0,
            significant_wins: 0,
            draws: 0,
        };
        for di in 0..d {
            let y = &actuals[di];
            let r = &reference_preds[di];
            let b = &preds[di];
            // Per-step squared-loss differences: baseline − reference, so
            // positive means the reference wins; the loss scale is
            // normalized away by the variance inside the t-test.
            let diffs: Vec<f64> = (0..y.len())
                .map(|t| {
                    let eb = b[t] - y[t];
                    let er = r[t] - y[t];
                    eb * eb - er * er
                })
                .collect();
            let mean_diff = diffs.iter().sum::<f64>() / diffs.len().max(1) as f64;
            let post = correlated_t_test(&diffs, rho, 0.0);
            if mean_diff > 0.0 {
                row.wins += 1;
                if post.right_significant(threshold) {
                    row.significant_wins += 1;
                }
            } else if mean_diff < 0.0 {
                row.losses += 1;
                if post.left_significant(threshold) {
                    row.significant_losses += 1;
                }
            } else {
                row.draws += 1;
            }
        }
        rows.push(row);
    }
    rows
}

/// Renders rows of cells as an aligned ASCII table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let mut out = String::new();
    out.push_str(&render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_counts_wins_and_losses() {
        // Two datasets; reference perfect on ds0, baseline perfect on ds1.
        let actuals = vec![vec![1.0; 30], vec![2.0; 30]];
        let reference = vec![vec![1.0; 30], vec![3.0; 30]];
        let baseline = vec![vec![1.5; 30], vec![2.0; 30]];
        let rows = pairwise_table(
            &actuals,
            &reference,
            &[("B".to_string(), baseline)],
            0.0,
            0.95,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].wins, 1);
        assert_eq!(rows[0].losses, 1);
        assert_eq!(rows[0].significant_wins, 1);
        assert_eq!(rows[0].significant_losses, 1);
        assert_eq!(rows[0].draws, 0);
    }

    #[test]
    fn near_ties_are_not_significant() {
        // Alternating tiny advantage: the posterior stays uncertain.
        let actuals = vec![(0..40).map(|t| t as f64).collect::<Vec<f64>>()];
        let reference = vec![(0..40)
            .map(|t| t as f64 + if t % 2 == 0 { 0.1 } else { -0.1 })
            .collect()];
        let baseline = vec![(0..40)
            .map(|t| t as f64 + if t % 2 == 0 { -0.1 } else { 0.1 })
            .collect()];
        let rows = pairwise_table(
            &actuals,
            &reference,
            &[("B".to_string(), baseline)],
            0.0,
            0.95,
        );
        assert_eq!(rows[0].significant_wins + rows[0].significant_losses, 0);
    }

    #[test]
    fn render_table_with_no_rows_still_has_header() {
        let s = render_table(&["A", "B"], &[]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('A'));
    }

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            &["Method", "RMSE"],
            &[
                vec!["EA-DRL".to_string(), "1.23".to_string()],
                vec!["SE".to_string(), "10.5".to_string()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "RMSE" column starts at the same index everywhere.
        let idx = lines[0].find("RMSE").unwrap();
        assert_eq!(&lines[2][idx..idx + 4], "1.23");
    }
}
