//! Univariate time-series container.

/// Sampling frequency of a series, mirroring the cadences in the paper's
/// Table I (daily, hourly, half-hourly, 10-minute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frequency {
    /// One observation per day (water consumption, river flow).
    Daily,
    /// One observation per hour (bike sharing, weather, solar).
    Hourly,
    /// One observation per 30 minutes (taxi demand).
    HalfHourly,
    /// One observation per 10 minutes (NH4, appliance energy, stocks).
    TenMinutes,
    /// Anything else / synthetic.
    Other,
}

impl Frequency {
    /// A natural seasonal period for the frequency (observations per cycle):
    /// weekly for daily data, daily for intraday data.
    pub fn default_season(self) -> usize {
        match self {
            Frequency::Daily => 7,
            Frequency::Hourly => 24,
            Frequency::HalfHourly => 48,
            Frequency::TenMinutes => 144,
            Frequency::Other => 12,
        }
    }
}

/// A named univariate time series.
///
/// Values are stored oldest-first. The container is intentionally small:
/// everything analytic lives in the sibling modules and operates on slices,
/// so models can work on windows without copying.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    frequency: Frequency,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from its values.
    pub fn new(name: impl Into<String>, frequency: Frequency, values: Vec<f64>) -> Self {
        TimeSeries {
            name: name.into(),
            frequency,
            values,
        }
    }

    /// Series name (e.g. `"Taxi Demand 1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sampling frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// The observations, oldest first.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends one observation (online setting).
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// The most recent `n` values (all of them when `n >= len`).
    pub fn tail(&self, n: usize) -> &[f64] {
        let start = self.values.len().saturating_sub(n);
        &self.values[start..]
    }

    /// Splits into `(train, test)` slices at the given train ratio.
    ///
    /// The paper uses a 75 % / 25 % split. `ratio` is clamped to `[0, 1]`.
    pub fn split(&self, ratio: f64) -> (&[f64], &[f64]) {
        let ratio = ratio.clamp(0.0, 1.0);
        let cut = (self.values.len() as f64 * ratio).round() as usize;
        let cut = cut.min(self.values.len());
        (&self.values[..cut], &self.values[cut..])
    }

    /// Returns a copy restricted to the half-open index range.
    pub fn slice(&self, range: std::ops::Range<usize>) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            frequency: self.frequency,
            values: self.values[range].to_vec(),
        }
    }

    /// Minimum value; `None` when empty or all-NaN.
    pub fn min(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// Maximum value; `None` when empty or all-NaN.
    pub fn max(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        eadrl_linalg_mean(&self.values)
    }

    /// Population standard deviation; 0.0 for fewer than two values.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64)
            .sqrt()
    }
}

// Tiny local mean to avoid a dependency cycle with eadrl-linalg (timeseries
// sits below models in the dependency graph and deliberately does not pull
// the linalg crate in).
fn eadrl_linalg_mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new("test", Frequency::Other, values)
    }

    #[test]
    fn split_respects_paper_ratio() {
        let s = ts((0..100).map(|i| i as f64).collect());
        let (train, test) = s.split(0.75);
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        assert_eq!(train[74], 74.0);
        assert_eq!(test[0], 75.0);
    }

    #[test]
    fn split_clamps_ratio() {
        let s = ts(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.split(2.0).0.len(), 3);
        assert_eq!(s.split(-1.0).0.len(), 0);
    }

    #[test]
    fn tail_returns_most_recent() {
        let s = ts(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.tail(2), &[3.0, 4.0]);
        assert_eq!(s.tail(10), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn push_extends_series() {
        let mut s = ts(vec![1.0]);
        s.push(2.0);
        assert_eq!(s.values(), &[1.0, 2.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn summary_statistics() {
        let s = ts(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_edge_cases() {
        let s = ts(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn default_seasons_match_cadence() {
        assert_eq!(Frequency::Daily.default_season(), 7);
        assert_eq!(Frequency::Hourly.default_season(), 24);
        assert_eq!(Frequency::HalfHourly.default_season(), 48);
        assert_eq!(Frequency::TenMinutes.default_season(), 144);
    }

    #[test]
    fn slice_copies_range() {
        let s = ts(vec![1.0, 2.0, 3.0, 4.0]);
        let sub = s.slice(1..3);
        assert_eq!(sub.values(), &[2.0, 3.0]);
        assert_eq!(sub.name(), "test");
    }
}
