//! Deep deterministic policy gradient (Lillicrap et al.), from scratch.

use crate::env::Environment;
use crate::noise::{Noise, OrnsteinUhlenbeck};
use crate::replay::{ReplayBuffer, SamplingStrategy, Transition};
use crate::squash::ActionSquash;
use eadrl_linalg::Matrix;
use eadrl_nn::{Activation, Adam, Mlp, Network, Optimizer};
use eadrl_obs::{Counter, Gauge, Histogram, Level};
use eadrl_rng::DetRng;
use std::sync::Arc;

/// Which compute path [`DdpgAgent::update`] takes through the networks.
///
/// Both paths are **bitwise-identical** in every observable way —
/// post-update parameters, [`UpdateStats`], telemetry at levels up to
/// `debug`, and the RNG stream — as proven by the differential tests in
/// `crates/rl/tests/batched_equivalence.rs` and
/// `crates/core/tests/batched_determinism.rs`. (At `trace` level the
/// batched path additionally emits per-phase profiling spans inside
/// `ddpg.update` — `critic.forward`, `actor.backward`, … — which the
/// per-sample reference deliberately lacks.) `Batched` assembles the
/// minibatch into matrices once and runs one GEMM-backed forward/backward
/// per network per update; `PerSample` is the original transition-at-a-time
/// loop, kept as the differential reference (and for profiling the gap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum UpdatePath {
    /// Minibatch-as-matrix updates through `forward_batch`/`backward_batch`.
    #[default]
    Batched,
    /// Original per-transition loop (reference implementation).
    PerSample,
}

/// Hyper-parameters of the DDPG agent.
///
/// Defaults follow the paper's EA-DRL setup where stated (γ = 0.9,
/// learning rate α = 0.01, diversity sampling) and the original DDPG
/// elsewhere (τ = 0.001 Polyak updates, OU exploration noise).
#[derive(Debug, Clone)]
pub struct DdpgConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Polyak soft-update coefficient τ.
    pub tau: f64,
    /// Mini-batch size `N`.
    pub batch_size: usize,
    /// Replay capacity `N_max`.
    pub buffer_capacity: usize,
    /// Replay sampling strategy (the paper's contribution is `Diversity`).
    pub sampling: SamplingStrategy,
    /// Hidden-layer sizes shared by actor and critic.
    pub hidden: Vec<usize>,
    /// Output map from raw actor output to the action space.
    pub squash: ActionSquash,
    /// OU noise scale σ (θ is fixed at 0.15).
    pub noise_sigma: f64,
    /// L2 weight decay on the raw actor output (logits), applied inside
    /// the actor update. Keeps the pre-squash logits from drifting into
    /// saturation, where the squash Jacobian — and with it all learning —
    /// vanishes. 0 disables.
    pub actor_logit_reg: f64,
    /// RNG seed (initialization, noise, replay sampling).
    pub seed: u64,
    /// Compute path for gradient updates (bitwise-equivalent options; see
    /// [`UpdatePath`]).
    pub update_path: UpdatePath,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            gamma: 0.9,
            actor_lr: 0.01,
            critic_lr: 0.01,
            tau: 0.01,
            batch_size: 32,
            buffer_capacity: 10_000,
            sampling: SamplingStrategy::Diversity,
            hidden: vec![64, 64],
            squash: ActionSquash::Softmax,
            noise_sigma: 0.2,
            actor_logit_reg: 1e-3,
            seed: 0,
            update_path: UpdatePath::Batched,
        }
    }
}

/// Per-episode training statistics (the y-axis of the paper's Figure 2 is
/// `avg_reward`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeStats {
    /// Sum of rewards over the episode.
    pub total_reward: f64,
    /// Steps taken.
    pub steps: usize,
    /// `total_reward / steps` (0 for an empty episode — see
    /// [`EpisodeStats::from_sums`]).
    pub avg_reward: f64,
    /// Mean critic TD loss over the episode's gradient updates (`NaN`
    /// when no update ran, e.g. while the replay buffer fills up or in
    /// greedy evaluation).
    pub critic_loss: f64,
    /// Mean actor objective (the critic's `Q(s, π(s))` estimate under the
    /// current policy) over the episode's updates; `NaN` when no update
    /// ran.
    pub actor_objective: f64,
}

impl EpisodeStats {
    /// Builds the stats from episode sums, enforcing the empty-episode
    /// contract: a zero-step episode has `avg_reward == 0` (never
    /// `NaN`/`Inf`), and emits a `ddpg.episode.empty` warning event so
    /// the degenerate environment is visible in traces.
    pub fn from_sums(
        total_reward: f64,
        steps: usize,
        critic_loss: f64,
        actor_objective: f64,
    ) -> EpisodeStats {
        let avg_reward = if steps > 0 {
            total_reward / steps as f64
        } else {
            eadrl_obs::warn(
                "ddpg.episode.empty",
                &[("total_reward", total_reward.into())],
            );
            0.0
        };
        EpisodeStats {
            total_reward,
            steps,
            avg_reward,
            critic_loss,
            actor_objective,
        }
    }
}

/// Diagnostics from one DDPG gradient update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStats {
    /// Mean squared TD error `(Q(s,a) - y)²` over the mini-batch.
    pub critic_loss: f64,
    /// Mean critic estimate `Q(s, π(s))` under the current policy — the
    /// quantity the actor ascends.
    pub actor_objective: f64,
    /// Global L2 norm of the critic gradients before clipping; only
    /// computed when debug-level telemetry is enabled.
    pub critic_grad_norm: Option<f64>,
    /// Global L2 norm of the actor gradients before clipping; only
    /// computed when debug-level telemetry is enabled.
    pub actor_grad_norm: Option<f64>,
}

/// Cached handles into the global metrics registry, resolved once per
/// agent so hot-path recording skips the registry lock.
struct DdpgTelemetry {
    episodes: Arc<Counter>,
    updates: Arc<Counter>,
    buffer_occupancy: Arc<Gauge>,
    episode_avg_reward: Arc<Histogram>,
    critic_loss: Arc<Histogram>,
}

impl DdpgTelemetry {
    fn new() -> DdpgTelemetry {
        DdpgTelemetry {
            episodes: eadrl_obs::counter("ddpg.episodes"),
            updates: eadrl_obs::counter("ddpg.updates"),
            buffer_occupancy: eadrl_obs::gauge("ddpg.replay.occupancy"),
            episode_avg_reward: eadrl_obs::histogram("ddpg.episode.avg_reward"),
            critic_loss: eadrl_obs::histogram("ddpg.critic_loss"),
        }
    }
}

/// Persistent minibatch staging buffers for the batched update path.
///
/// Reshaped in place every update, so after the first update at a given
/// batch size the assembly performs no heap allocations.
#[derive(Debug, Default)]
struct UpdateBuffers {
    /// Sampled states (`n x state_dim`) — the actor's input batch.
    states: Matrix,
    /// Sampled next-states (`n x state_dim`) — the target actor's input.
    next_states: Matrix,
    /// `[state | action]` rows (`n x (state_dim + action_dim)`) — the
    /// critic's TD-update input.
    sa: Matrix,
    /// `[next_state | π'(next_state)]` rows — the target critic's input.
    next_sa: Matrix,
    /// `[state | π(state)]` rows — the critic's input in the actor update.
    pi_sa: Matrix,
    /// Per-sample scalar gradients fed into the critic (`n x 1`).
    grad_q: Matrix,
    /// Per-sample raw-action gradients fed into the actor (`n x action_dim`).
    grad_raw: Matrix,
    /// Sampled rewards, in batch order.
    rewards: Vec<f64>,
    /// Sampled terminal flags, in batch order.
    dones: Vec<bool>,
    /// Bellman targets `y`, in batch order.
    targets: Vec<f64>,
    /// Scratch for Polyak syncs: current actor parameters.
    actor_params: Vec<f64>,
    /// Scratch for Polyak syncs: current critic parameters.
    critic_params: Vec<f64>,
}

/// The DDPG agent: actor + critic networks, their targets, a replay buffer
/// and an exploration-noise process.
pub struct DdpgAgent {
    config: DdpgConfig,
    actor: Mlp,
    critic: Mlp,
    target_actor: Mlp,
    target_critic: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    buffer: ReplayBuffer,
    noise: OrnsteinUhlenbeck,
    rng: DetRng,
    state_dim: usize,
    action_dim: usize,
    updates: u64,
    telemetry: DdpgTelemetry,
    bufs: UpdateBuffers,
}

impl DdpgAgent {
    /// Creates an agent for the given state/action dimensions.
    pub fn new(state_dim: usize, action_dim: usize, config: DdpgConfig) -> Self {
        let mut rng = DetRng::seed_from_u64(config.seed);
        let mut actor_sizes = vec![state_dim];
        actor_sizes.extend(&config.hidden);
        actor_sizes.push(action_dim);
        let actor = Mlp::new(
            &mut rng,
            &actor_sizes,
            Activation::Relu,
            Activation::Identity,
        )
        .with_small_final_layer(&mut rng, 3e-3);
        let mut critic_sizes = vec![state_dim + action_dim];
        critic_sizes.extend(&config.hidden);
        critic_sizes.push(1);
        let critic = Mlp::new(
            &mut rng,
            &critic_sizes,
            Activation::Relu,
            Activation::Identity,
        )
        .with_small_final_layer(&mut rng, 3e-3);
        let target_actor = actor.clone();
        let target_critic = critic.clone();
        let noise = OrnsteinUhlenbeck::new(action_dim, 0.0, 0.15, config.noise_sigma);
        DdpgAgent {
            actor_opt: Adam::new(config.actor_lr),
            critic_opt: Adam::new(config.critic_lr),
            buffer: ReplayBuffer::new(config.buffer_capacity),
            noise,
            rng,
            state_dim,
            action_dim,
            updates: 0,
            telemetry: DdpgTelemetry::new(),
            bufs: UpdateBuffers::default(),
            actor,
            critic,
            target_actor,
            target_critic,
            config,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &DdpgConfig {
        &self.config
    }

    /// Number of gradient updates performed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current replay-buffer fill level.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// State dimensionality the agent was built for.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Action dimensionality the agent was built for.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Critic estimate `Q(state, action)` — a diagnostics window into the
    /// learned value function (e.g. to inspect which weightings the critic
    /// believes in after training).
    pub fn critic_value(&self, state: &[f64], action: &[f64]) -> f64 {
        debug_assert_eq!(state.len(), self.state_dim);
        debug_assert_eq!(action.len(), self.action_dim);
        self.critic.forward_inference(&concat(state, action))[0]
    }

    /// Deterministic (greedy) action for `state`.
    pub fn act(&self, state: &[f64]) -> Vec<f64> {
        debug_assert_eq!(state.len(), self.state_dim);
        let raw = self.actor.forward_inference(state);
        self.config.squash.forward(&raw)
    }

    /// Exploratory action: OU noise added to the raw actor output before
    /// the squash, so squashed actions stay inside the action space.
    pub fn act_exploratory(&mut self, state: &[f64]) -> Vec<f64> {
        let mut raw = self.actor.forward_inference(state);
        let noise = self.noise.sample(&mut self.rng);
        for (r, n) in raw.iter_mut().zip(noise.iter()) {
            *r += n;
        }
        self.config.squash.forward(&raw)
    }

    /// Stores a transition in the replay buffer.
    pub fn observe(&mut self, transition: Transition) {
        self.buffer.push(transition);
    }

    /// Runs one DDPG update (critic regression + deterministic policy
    /// gradient + Polyak target updates) and returns its diagnostics.
    /// No-op (returning `None`) until the buffer holds at least one
    /// batch.
    ///
    /// The two [`UpdatePath`]s are interchangeable bit for bit: both
    /// consume exactly one replay-sampling draw from the RNG stream and
    /// produce identical post-update parameters and diagnostics.
    pub fn update(&mut self) -> Option<UpdateStats> {
        let n = self.config.batch_size;
        if self.buffer.len() < n {
            return None;
        }
        let _span = eadrl_obs::span_at(Level::Trace, "ddpg.update");
        let stats = match self.config.update_path {
            UpdatePath::Batched => self.update_batched(),
            UpdatePath::PerSample => self.update_per_sample(),
        };
        self.updates += 1;
        self.telemetry.updates.inc();
        self.telemetry.critic_loss.record(stats.critic_loss);
        Some(stats)
    }

    /// Minibatch-as-matrix update: the sampled transitions are staged into
    /// the persistent [`UpdateBuffers`] matrices once, and every network
    /// runs one batched forward/backward per update. Gradients accumulate
    /// through the GEMM kernels in sample order, so the result is
    /// bitwise-identical to [`Self::update_per_sample`].
    fn update_batched(&mut self) -> UpdateStats {
        let n = self.config.batch_size;
        let sd = self.state_dim;
        let ad = self.action_dim;

        // ---- Stage the minibatch (one RNG draw, same as the per-sample
        // path; the borrowed transitions are copied straight into the
        // reused matrices — no per-transition clones).
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "ddpg.stage");
            let batch = self.buffer.sample(n, self.config.sampling, &mut self.rng);
            self.bufs.states.resize(n, sd);
            self.bufs.next_states.resize(n, sd);
            self.bufs.sa.resize(n, sd + ad);
            self.bufs.rewards.clear();
            self.bufs.dones.clear();
            for (s, t) in batch.iter().enumerate() {
                self.bufs.states.row_mut(s).copy_from_slice(&t.state);
                self.bufs
                    .next_states
                    .row_mut(s)
                    .copy_from_slice(&t.next_state);
                let row = self.bufs.sa.row_mut(s);
                row[..sd].copy_from_slice(&t.state);
                row[sd..].copy_from_slice(&t.action);
                self.bufs.rewards.push(t.reward); // eadrl-lint: allow(hot-path-alloc): push into a cleared, capacity-retaining Vec — allocation-free at steady state
                self.bufs.dones.push(t.done); // eadrl-lint: allow(hot-path-alloc): push into a cleared, capacity-retaining Vec — allocation-free at steady state
            }
        }

        // ---- Bellman targets via the target networks, batched.
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "ddpg.targets");
            self.target_actor.forward_batch(&self.bufs.next_states);
            self.bufs.next_sa.resize(n, sd + ad);
            for s in 0..n {
                let row = self.bufs.next_sa.row_mut(s);
                let (row_s, row_a) = row.split_at_mut(sd);
                row_s.copy_from_slice(self.bufs.next_states.row(s));
                // Squash straight into the staged minibatch row — no
                // per-sample Vec.
                self.config
                    .squash
                    .forward_into(self.target_actor.batch_output().row(s), row_a);
            }
            self.target_critic.forward_batch(&self.bufs.next_sa);
            self.bufs.targets.clear();
            for s in 0..n {
                let q_next = self.target_critic.batch_output()[(s, 0)];
                let y = self.bufs.rewards[s]
                    + if self.bufs.dones[s] {
                        0.0
                    } else {
                        self.config.gamma * q_next
                    };
                self.bufs.targets.push(y); // eadrl-lint: allow(hot-path-alloc): push into a cleared, capacity-retaining Vec — allocation-free at steady state
            }
        }

        // ---- Critic update: minimize (Q(s,a) - y)² with Bellman targets.
        self.critic.zero_grad();
        let mut critic_loss = 0.0;
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "critic.forward");
            self.critic.forward_batch(&self.bufs.sa);
            self.bufs.grad_q.resize(n, 1);
            for s in 0..n {
                let err = self.critic.batch_output()[(s, 0)] - self.bufs.targets[s];
                critic_loss += err * err / n as f64;
                self.bufs.grad_q[(s, 0)] = 2.0 * err / n as f64;
            }
        }
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "critic.backward");
            // Nothing sits below the critic's first layer — skip its
            // input-gradient GEMM (parameter gradients are bitwise identical).
            self.critic.backward_batch_weights_only(&self.bufs.grad_q);
        }
        let critic_grad_norm = eadrl_obs::enabled(Level::Debug).then(|| self.critic.grad_norm());
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "ddpg.optimizer");
            self.critic.clip_grad_norm(5.0);
            self.critic_opt.step(&mut self.critic);
        }

        // ---- Actor update: ascend ∇_θ Q(s, π_θ(s)).
        self.actor.zero_grad();
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "actor.forward");
            self.actor.forward_batch(&self.bufs.states);
        }
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "squash.forward");
            self.bufs.pi_sa.resize(n, sd + ad);
            for s in 0..n {
                let row = self.bufs.pi_sa.row_mut(s);
                let (row_s, row_a) = row.split_at_mut(sd);
                row_s.copy_from_slice(self.bufs.states.row(s));
                self.config
                    .squash
                    .forward_into(self.actor.batch_output().row(s), row_a);
            }
        }
        let mut actor_objective = 0.0;
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "critic.grad_input");
            self.critic.forward_batch(&self.bufs.pi_sa);
            self.bufs.grad_q.resize(n, 1);
            for s in 0..n {
                actor_objective += self.critic.batch_output()[(s, 0)] / n as f64;
                // dQ/d(input) with loss = -Q / n (gradient ascent on Q).
                self.bufs.grad_q[(s, 0)] = -1.0 / n as f64;
            }
            // The critic is differentiated only to reach the action inputs —
            // its own weight gradients are scratch in both update paths, so
            // the input-only backward skips computing them altogether.
            self.critic.backward_batch_input_only(&self.bufs.grad_q);
        }
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "squash.backward");
            self.bufs.grad_raw.resize(n, ad);
            let reg = self.config.actor_logit_reg;
            for s in 0..n {
                let raw = self.actor.batch_output().row(s);
                let action = &self.bufs.pi_sa.row(s)[sd..];
                let grad_action = &self.critic.batch_grad_input().row(s)[sd..];
                let grad_raw = self.bufs.grad_raw.row_mut(s);
                self.config
                    .squash
                    .backward_into(raw, action, grad_action, grad_raw);
                // Logit weight decay: keeps the actor out of squash saturation.
                if reg > 0.0 {
                    for (g, &r) in grad_raw.iter_mut().zip(raw.iter()) {
                        *g += reg * r / n as f64;
                    }
                }
            }
        }
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "actor.backward");
            self.actor.backward_batch_weights_only(&self.bufs.grad_raw);
        }
        let actor_grad_norm = eadrl_obs::enabled(Level::Debug).then(|| self.actor.grad_norm());
        {
            let _phase = eadrl_obs::span_at(Level::Trace, "ddpg.optimizer");
            self.actor.clip_grad_norm(5.0);
            self.actor_opt.step(&mut self.actor);
        }

        {
            let _phase = eadrl_obs::span_at(Level::Trace, "ddpg.polyak");
            self.polyak_target_updates();
        }
        UpdateStats {
            critic_loss,
            actor_objective,
            critic_grad_norm,
            actor_grad_norm,
        }
    }

    /// Original transition-at-a-time update loop — the differential
    /// reference for [`Self::update_batched`].
    fn update_per_sample(&mut self) -> UpdateStats {
        let n = self.config.batch_size;
        let batch: Vec<Transition> = self
            .buffer
            .sample(n, self.config.sampling, &mut self.rng)
            .into_iter()
            .cloned()
            .collect();

        // ---- Critic update: minimize (Q(s,a) - y)² with Bellman targets.
        let mut targets = Vec::with_capacity(n);
        for t in &batch {
            let raw_next = self.target_actor.forward_inference(&t.next_state);
            let a_next = self.config.squash.forward(&raw_next);
            let q_next = self
                .target_critic
                .forward_inference(&concat(&t.next_state, &a_next))[0];
            let y = t.reward
                + if t.done {
                    0.0
                } else {
                    self.config.gamma * q_next
                };
            targets.push(y);
        }
        self.critic.zero_grad();
        let mut critic_loss = 0.0;
        for (t, &y) in batch.iter().zip(targets.iter()) {
            let q = self.critic.forward(&concat(&t.state, &t.action))[0];
            let err = q - y;
            critic_loss += err * err / n as f64;
            let g = 2.0 * err / n as f64;
            self.critic.backward(&[g]);
        }
        // Gradient norms are only interesting to traces; skip the extra
        // parameter sweep unless debug telemetry is on.
        let critic_grad_norm = eadrl_obs::enabled(Level::Debug).then(|| self.critic.grad_norm());
        self.critic.clip_grad_norm(5.0);
        self.critic_opt.step(&mut self.critic);

        // ---- Actor update: ascend ∇_θ Q(s, π_θ(s)).
        self.actor.zero_grad();
        self.critic.zero_grad(); // scratch space for input gradients
        let mut actor_objective = 0.0;
        for t in &batch {
            let raw = self.actor.forward(&t.state);
            let action = self.config.squash.forward(&raw);
            let q = self.critic.forward(&concat(&t.state, &action));
            actor_objective += q[0] / n as f64;
            // dQ/d(input) with loss = -Q / n (gradient ascent on Q).
            let grad_in = self.critic.backward(&[-1.0 / n as f64]);
            let grad_action = &grad_in[self.state_dim..];
            let mut grad_raw = self.config.squash.backward(&raw, &action, grad_action);
            // Logit weight decay: keeps the actor out of squash saturation.
            let reg = self.config.actor_logit_reg;
            if reg > 0.0 {
                for (g, &r) in grad_raw.iter_mut().zip(raw.iter()) {
                    *g += reg * r / n as f64;
                }
            }
            self.actor.backward(&grad_raw);
        }
        let actor_grad_norm = eadrl_obs::enabled(Level::Debug).then(|| self.actor.grad_norm());
        self.actor.clip_grad_norm(5.0);
        self.actor_opt.step(&mut self.actor);
        self.critic.zero_grad(); // discard scratch gradients

        self.polyak_target_updates();
        UpdateStats {
            critic_loss,
            actor_objective,
            critic_grad_norm,
            actor_grad_norm,
        }
    }

    /// Polyak soft target updates, shared by both update paths. Parameter
    /// snapshots go through persistent scratch buffers
    /// ([`Network::flat_params_into`]) so the per-update sync is
    /// allocation-free at steady state.
    fn polyak_target_updates(&mut self) {
        let tau = self.config.tau;
        self.actor.flat_params_into(&mut self.bufs.actor_params);
        self.target_actor
            .soft_update_from(&self.bufs.actor_params, tau);
        self.critic.flat_params_into(&mut self.bufs.critic_params);
        self.target_critic
            .soft_update_from(&self.bufs.critic_params, tau);
    }

    /// Runs one episode on `env`. With `train = true` the agent explores,
    /// stores transitions and updates after every step; otherwise it acts
    /// greedily without learning.
    pub fn run_episode(&mut self, env: &mut dyn Environment, train: bool) -> EpisodeStats {
        let _span = eadrl_obs::span_at(Level::Debug, "ddpg.episode");
        let mut state = env.reset();
        self.noise.reset();
        let mut total_reward = 0.0;
        let mut steps = 0usize;
        let mut critic_loss_sum = 0.0;
        let mut actor_objective_sum = 0.0;
        let mut grad_norm_sums = (0.0, 0.0);
        let mut grad_norm_count = 0u64;
        let mut n_updates = 0u64;
        loop {
            let action = if train {
                self.act_exploratory(&state)
            } else {
                self.act(&state)
            };
            let (next_state, reward, done) = env.step(&action);
            total_reward += reward;
            steps += 1;
            if train {
                self.observe(Transition {
                    state: state.clone(),
                    action,
                    reward,
                    next_state: next_state.clone(),
                    done,
                });
                if let Some(stats) = self.update() {
                    critic_loss_sum += stats.critic_loss;
                    actor_objective_sum += stats.actor_objective;
                    n_updates += 1;
                    if let (Some(c), Some(a)) = (stats.critic_grad_norm, stats.actor_grad_norm) {
                        grad_norm_sums.0 += c;
                        grad_norm_sums.1 += a;
                        grad_norm_count += 1;
                    }
                }
            }
            state = next_state;
            if done {
                break;
            }
        }
        let (critic_loss, actor_objective) = if n_updates > 0 {
            (
                critic_loss_sum / n_updates as f64,
                actor_objective_sum / n_updates as f64,
            )
        } else {
            (f64::NAN, f64::NAN)
        };
        let stats = EpisodeStats::from_sums(total_reward, steps, critic_loss, actor_objective);
        self.telemetry.episodes.inc();
        self.telemetry.episode_avg_reward.record(stats.avg_reward);
        self.telemetry
            .buffer_occupancy
            .set(self.buffer.len() as f64);
        eadrl_obs::event_with("ddpg.episode", Level::Info, || {
            let mut fields: Vec<(String, eadrl_obs::Value)> = vec![
                ("train".to_string(), train.into()),
                ("total_reward".to_string(), stats.total_reward.into()),
                ("steps".to_string(), stats.steps.into()),
                ("avg_reward".to_string(), stats.avg_reward.into()),
                ("critic_loss".to_string(), stats.critic_loss.into()),
                ("actor_objective".to_string(), stats.actor_objective.into()),
                ("updates_total".to_string(), self.updates.into()),
                ("buffer_len".to_string(), self.buffer.len().into()),
                ("buffer_capacity".to_string(), self.buffer.capacity().into()),
                (
                    "buffer_above_median".to_string(),
                    self.buffer.above_median_fraction().into(),
                ),
                ("noise_sigma".to_string(), self.config.noise_sigma.into()),
            ];
            if grad_norm_count > 0 {
                fields.push((
                    "critic_grad_norm".to_string(),
                    (grad_norm_sums.0 / grad_norm_count as f64).into(),
                ));
                fields.push((
                    "actor_grad_norm".to_string(),
                    (grad_norm_sums.1 / grad_norm_count as f64).into(),
                ));
            }
            fields
        });
        stats
    }

    /// Trains for `episodes` episodes and returns the per-episode stats —
    /// the learning curve of the paper's Figure 2.
    pub fn train(&mut self, env: &mut dyn Environment, episodes: usize) -> Vec<EpisodeStats> {
        let _span = eadrl_obs::span("ddpg.train");
        (0..episodes).map(|_| self.run_episode(env, true)).collect()
    }

    /// Sets the actor's output-layer bias (and mirrors it into the target
    /// actor): with near-zero final-layer weights, this makes the initial
    /// policy emit `squash(bias)` in every state — an *informed
    /// initialization* that lets training start from a known-good action.
    ///
    /// # Panics
    /// Panics when `bias` does not match the action dimension.
    pub fn init_actor_output_bias(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.action_dim, "bias/action dim mismatch");
        for net in [&mut self.actor, &mut self.target_actor] {
            if let Some(layer) = net.final_layer_mut() {
                layer.bias_mut().copy_from_slice(bias);
            }
        }
    }

    /// Greedy evaluation: runs `episodes` noise-free episodes without
    /// learning and returns the mean per-step reward.
    pub fn evaluate(&mut self, env: &mut dyn Environment, episodes: usize) -> f64 {
        let episodes = episodes.max(1);
        let mut total = 0.0;
        let mut steps = 0usize;
        for _ in 0..episodes {
            let stats = self.run_episode(env, false);
            total += stats.total_reward;
            steps += stats.steps;
        }
        if steps > 0 {
            total / steps as f64
        } else {
            0.0
        }
    }

    /// Snapshot of the actor's parameters (for best-checkpoint selection).
    pub fn actor_params(&mut self) -> Vec<f64> {
        self.actor.flat_params()
    }

    /// Restores actor parameters from [`DdpgAgent::actor_params`].
    pub fn load_actor_params(&mut self, params: &[f64]) {
        self.actor.load_flat_params(params);
    }

    /// Snapshot of the critic's parameters (differential testing of the
    /// batched vs per-sample update paths).
    pub fn critic_params(&mut self) -> Vec<f64> {
        self.critic.flat_params()
    }

    /// Snapshot of the target networks' parameters, actor then critic
    /// (differential testing of the Polyak averaging step).
    pub fn target_params(&mut self) -> Vec<f64> {
        let mut v = self.target_actor.flat_params();
        v.extend(self.target_critic.flat_params());
        v
    }
}

fn concat(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut v = Vec::with_capacity(a.len() + b.len());
    v.extend_from_slice(a);
    v.extend_from_slice(b);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::PointMass;

    fn small_config(squash: ActionSquash) -> DdpgConfig {
        DdpgConfig {
            gamma: 0.9,
            actor_lr: 0.005,
            critic_lr: 0.01,
            tau: 0.02,
            batch_size: 32,
            buffer_capacity: 5_000,
            sampling: SamplingStrategy::Uniform,
            hidden: vec![24],
            squash,
            noise_sigma: 0.3,
            actor_logit_reg: 0.0,
            seed: 7,
            update_path: UpdatePath::Batched,
        }
    }

    #[test]
    fn actions_respect_squash() {
        let agent = DdpgAgent::new(
            3,
            4,
            DdpgConfig {
                squash: ActionSquash::Softmax,
                ..small_config(ActionSquash::Softmax)
            },
        );
        let a = agent.act(&[0.1, -0.2, 0.3]);
        assert_eq!(a.len(), 4);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(a.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn update_is_noop_until_buffer_filled() {
        let mut agent = DdpgAgent::new(1, 1, small_config(ActionSquash::Tanh));
        agent.update();
        assert_eq!(agent.updates(), 0);
        for _ in 0..agent.config().batch_size {
            agent.observe(Transition {
                state: vec![0.0],
                action: vec![0.0],
                reward: 0.0,
                next_state: vec![0.0],
                done: false,
            });
        }
        agent.update();
        assert_eq!(agent.updates(), 1);
    }

    #[test]
    fn ddpg_learns_point_mass_control() {
        let mut env = PointMass::new(1.0, 25);
        let mut agent = DdpgAgent::new(1, 1, small_config(ActionSquash::Tanh));
        let stats = agent.train(&mut env, 50);
        let early: f64 = stats[..5].iter().map(|s| s.avg_reward).sum::<f64>() / 5.0;
        let late: f64 = stats[45..].iter().map(|s| s.avg_reward).sum::<f64>() / 5.0;
        assert!(
            late > early,
            "no improvement: early {early:.4}, late {late:.4}"
        );
        // A greedy rollout should end near the target.
        let eval = agent.run_episode(&mut env, false);
        assert!(
            eval.avg_reward > -0.5,
            "greedy policy still poor: {}",
            eval.avg_reward
        );
    }

    #[test]
    fn training_is_seed_deterministic() {
        let run = || {
            let mut env = PointMass::new(0.5, 10);
            let mut agent = DdpgAgent::new(1, 1, small_config(ActionSquash::Tanh));
            agent.train(&mut env, 5);
            agent.act(&[0.3])[0]
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exploratory_actions_differ_from_greedy() {
        let mut agent = DdpgAgent::new(1, 1, small_config(ActionSquash::Tanh));
        let greedy = agent.act(&[0.0]);
        let explore = agent.act_exploratory(&[0.0]);
        assert_ne!(greedy, explore);
    }

    #[test]
    fn critic_learns_to_prefer_good_actions() {
        let mut env = PointMass::new(1.0, 25);
        let mut agent = DdpgAgent::new(1, 1, small_config(ActionSquash::Tanh));
        agent.train(&mut env, 40);
        // From the start state, moving toward the target should be valued
        // higher than moving away.
        let toward = agent.critic_value(&[0.0], &[1.0]);
        let away = agent.critic_value(&[0.0], &[-1.0]);
        assert!(
            toward > away,
            "critic should prefer moving toward the target: {toward} vs {away}"
        );
    }

    #[test]
    fn evaluate_reports_noise_free_performance() {
        let mut env = PointMass::new(1.0, 15);
        let mut agent = DdpgAgent::new(1, 1, small_config(ActionSquash::Tanh));
        agent.train(&mut env, 30);
        let a = agent.evaluate(&mut env, 3);
        let b = agent.evaluate(&mut env, 3);
        // Greedy evaluation is deterministic in a deterministic env.
        assert_eq!(a, b);
        assert!(a.is_finite());
    }

    #[test]
    fn empty_episode_contract_and_telemetry_events() {
        use eadrl_obs::{Level, NoopSink, RingSink, Value};
        let sink = Arc::new(RingSink::new(4096));
        eadrl_obs::set_sink(sink.clone());
        eadrl_obs::set_level(Some(Level::Info));

        // Zero-step episodes: avg_reward is 0 — never NaN/Inf — and the
        // degenerate case surfaces as a warning event.
        let stats = EpisodeStats::from_sums(0.0, 0, f64::NAN, f64::NAN);
        assert_eq!(stats.avg_reward, 0.0);
        assert_eq!(stats.steps, 0);
        assert_eq!(sink.events_named("ddpg.episode.empty").len(), 1);

        // Training emits one info-level event per episode, and once the
        // buffer holds a batch the critic loss becomes finite.
        let mut env = PointMass::new(0.5, 10);
        let mut agent = DdpgAgent::new(1, 1, small_config(ActionSquash::Tanh));
        let episodes = 5;
        agent.train(&mut env, episodes);
        let events = sink.events_named("ddpg.episode");
        assert!(
            events.len() >= episodes,
            "expected >= {episodes} episode events, got {}",
            events.len()
        );
        let finite_losses = events
            .iter()
            .filter(|e| matches!(e.get("critic_loss"), Some(Value::F64(v)) if v.is_finite()))
            .count();
        assert!(
            finite_losses > 0,
            "episodes with updates must report a finite critic loss"
        );

        eadrl_obs::set_level(None);
        eadrl_obs::set_sink(Arc::new(NoopSink));
    }

    #[test]
    fn update_stats_report_losses() {
        let mut env = PointMass::new(0.5, 40);
        let mut agent = DdpgAgent::new(1, 1, small_config(ActionSquash::Tanh));
        // Fill the buffer with one long episode, then update directly.
        agent.run_episode(&mut env, true);
        let stats = agent.update().expect("buffer holds a batch");
        assert!(stats.critic_loss.is_finite() && stats.critic_loss >= 0.0);
        assert!(stats.actor_objective.is_finite());
        // Debug telemetry is off, so grad norms are skipped.
        assert!(stats.critic_grad_norm.is_none());
        assert!(stats.actor_grad_norm.is_none());
    }

    #[test]
    fn diversity_sampling_also_trains() {
        let mut env = PointMass::new(1.0, 20);
        let cfg = DdpgConfig {
            sampling: SamplingStrategy::Diversity,
            ..small_config(ActionSquash::Tanh)
        };
        let mut agent = DdpgAgent::new(1, 1, cfg);
        let stats = agent.train(&mut env, 20);
        assert_eq!(stats.len(), 20);
        assert!(agent.updates() > 0);
        assert!(stats.iter().all(|s| s.avg_reward.is_finite()));
    }
}
