//! Counting-allocator proof of the zero-steady-state-allocation claim:
//! after warm-up, `forward_batch`/`backward_batch` must not touch the heap.
//!
//! This binary holds exactly ONE test: the global allocator is
//! instrumented with a thread-local counter, and while counting is
//! per-thread (so parallel test threads cannot interfere with the
//! counter), keeping the binary single-test makes the measurement window
//! unambiguous.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use eadrl_linalg::Matrix;
use eadrl_nn::{Activation, Mlp, Network};
use eadrl_rng::DetRng;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Passes every request through to the system allocator, counting
/// allocations (not deallocations) on the current thread. `try_with`
/// guards against counting during thread teardown, when the TLS slot is
/// gone; `const`-initialized `Cell` TLS needs no allocating destructor.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOC_COUNT.with(|c| c.get())
}

#[test]
fn batched_passes_are_allocation_free_after_warm_up() {
    let mut rng = DetRng::seed_from_u64(9);
    let mut mlp = Mlp::new(
        &mut rng,
        &[12, 32, 32, 1],
        Activation::Relu,
        Activation::Identity,
    );

    let batch = 64;
    let input = Matrix::from_rows(
        &(0..batch)
            .map(|_| (0..12).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect::<Vec<Vec<f64>>>(),
    )
    .expect("rectangular input");
    let gout = Matrix::from_rows(
        &(0..batch)
            .map(|_| vec![rng.random_range(-1.0..1.0)])
            .collect::<Vec<Vec<f64>>>(),
    )
    .expect("rectangular grads");

    // Warm-up: first passes size every persistent workspace.
    for _ in 0..3 {
        mlp.zero_grad();
        mlp.forward_batch(&input);
        mlp.backward_batch(&gout);
    }

    let before = allocations();
    for _ in 0..10 {
        mlp.zero_grad();
        mlp.forward_batch(&input);
        mlp.backward_batch(&gout);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state batched forward/backward must not allocate"
    );
}
