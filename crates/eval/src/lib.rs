//! Evaluation harness for the EA-DRL reproduction.
//!
//! Implements the statistical machinery of the paper's §III:
//!
//! * [`special`] — log-gamma, regularized incomplete beta, Student-t CDF
//!   (the numerical substrate for the Bayesian tests),
//! * [`bayes`] — the **Bayesian correlated t-test** for comparing a pair
//!   of methods on a single dataset and the **Bayes sign test** for
//!   comparing a pair of methods across multiple datasets (Benavoli,
//!   Corani, Demšar & Zaffalon, JMLR 2017),
//! * [`friedman`] — the **Friedman test** with the Iman–Davenport
//!   correction and the **Nemenyi critical difference** (Demšar, JMLR
//!   2006 — reference \[43\] of the paper),
//! * [`ranks`] — per-dataset rank assignment with tie averaging and the
//!   mean ± std rank distribution reported in Table II,
//! * [`report`] — win/loss tabulation with 95 % significance counting and
//!   ASCII table rendering of the paper's tables.

pub mod bayes;
pub mod friedman;
pub mod ranks;
pub mod report;
pub mod special;

pub use bayes::{bayes_sign_test, correlated_t_test, Posterior};
pub use friedman::{friedman_test, nemenyi_critical_difference, FriedmanResult};
pub use ranks::{average_ranks, rank_with_ties, RankSummary};
pub use report::{pairwise_table, render_table, PairwiseRow};
