//! Cross-module target: `lib.rs` imports `helper` through
//! `use crate::util::helper` and calls it bare, from inside a closure.

/// Forwards into a private fn that panics two hops down.
pub fn helper(x: f64) -> f64 {
    deep(x)
}

fn deep(x: f64) -> f64 {
    normalized(x).expect("finite input")
}

fn normalized(x: f64) -> Option<f64> {
    if x.is_finite() {
        Some(x / 2.0)
    } else {
        None
    }
}
