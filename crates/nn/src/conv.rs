//! 1-D convolution layer (valid padding, stride 1).

use crate::activation::Activation;
use crate::init;
use crate::network::Network;
use eadrl_rng::DetRng;

/// A 1-D convolution `out[c][t] = act(b[c] + Σ_ci Σ_k w[c][ci][k] · in[ci][t+k])`.
///
/// Valid padding, stride 1: an input of length `L` yields outputs of length
/// `L - kernel + 1`. Inputs and outputs are channel-major
/// (`Vec<channel> -> Vec<time>`). This is the feature extractor of the
/// CNN-LSTM base forecaster.
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    activation: Activation,
    /// Weights laid out `[out_ch][in_ch][k]`.
    w: Vec<f64>,
    b: Vec<f64>,
    grad_w: Vec<f64>,
    grad_b: Vec<f64>,
    cache_input: Vec<Vec<f64>>,
    cache_output: Vec<Vec<f64>>,
}

impl Conv1d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    /// Panics when `kernel == 0`.
    pub fn new(
        rng: &mut DetRng,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        activation: Activation,
    ) -> Self {
        assert!(kernel > 0, "Conv1d kernel must be positive");
        let fan_in = in_channels * kernel;
        let n = out_channels * fan_in;
        let w = match activation {
            Activation::Relu => init::he_uniform(rng, fan_in, n),
            _ => init::xavier_uniform(rng, fan_in, out_channels * kernel, n),
        };
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            activation,
            w,
            b: vec![0.0; out_channels],
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_channels],
            cache_input: Vec::new(),
            cache_output: Vec::new(),
        }
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Output length for an input of length `len` (0 when too short).
    pub fn out_len(&self, len: usize) -> usize {
        (len + 1).saturating_sub(self.kernel)
    }

    fn weight(&self, oc: usize, ic: usize, k: usize) -> f64 {
        self.w[(oc * self.in_channels + ic) * self.kernel + k]
    }

    /// Training forward pass (caches input and output).
    ///
    /// # Panics
    /// Debug-panics when the channel count mismatches or the input is
    /// shorter than the kernel.
    pub fn forward(&mut self, input: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let out = self.forward_inference(input);
        self.cache_input = input.to_vec();
        self.cache_output = out.clone();
        out
    }

    /// Inference-only forward pass.
    pub fn forward_inference(&self, input: &[Vec<f64>]) -> Vec<Vec<f64>> {
        debug_assert_eq!(input.len(), self.in_channels, "Conv1d: channel count");
        let len = input.first().map_or(0, Vec::len);
        debug_assert!(len >= self.kernel, "Conv1d: input shorter than kernel");
        let out_len = self.out_len(len);
        let mut out = vec![vec![0.0; out_len]; self.out_channels];
        for (oc, och) in out.iter_mut().enumerate() {
            for (t, ov) in och.iter_mut().enumerate() {
                let mut s = self.b[oc];
                for (ic, ich) in input.iter().enumerate() {
                    for k in 0..self.kernel {
                        s += self.weight(oc, ic, k) * ich[t + k];
                    }
                }
                *ov = self.activation.apply(s);
            }
        }
        out
    }

    /// Backward pass: accumulates parameter gradients and returns input
    /// gradients (channel-major, same shape as the forward input).
    pub fn backward(&mut self, grad_output: &[Vec<f64>]) -> Vec<Vec<f64>> {
        debug_assert_eq!(grad_output.len(), self.out_channels);
        debug_assert!(
            !self.cache_input.is_empty(),
            "Conv1d backward called before forward"
        );
        let in_len = self.cache_input[0].len();
        let mut grad_input = vec![vec![0.0; in_len]; self.in_channels];
        for (oc, (goch, yoch)) in grad_output.iter().zip(self.cache_output.iter()).enumerate() {
            for (t, (&gy, &y)) in goch.iter().zip(yoch.iter()).enumerate() {
                let dz = gy * self.activation.derivative_from_output(y);
                // eadrl-lint: allow(no-float-eq): ReLU subgradient — exact zero means no gradient flows, skip is lossless
                if dz == 0.0 {
                    continue;
                }
                self.grad_b[oc] += dz;
                for ic in 0..self.in_channels {
                    for k in 0..self.kernel {
                        let widx = (oc * self.in_channels + ic) * self.kernel + k;
                        self.grad_w[widx] += dz * self.cache_input[ic][t + k];
                        grad_input[ic][t + k] += dz * self.w[widx];
                    }
                }
            }
        }
        grad_input
    }
}

impl Network for Conv1d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_length_is_valid_conv() {
        let mut rng = DetRng::seed_from_u64(0);
        let conv = Conv1d::new(&mut rng, 1, 2, 3, Activation::Identity);
        assert_eq!(conv.out_len(5), 3);
        assert_eq!(conv.out_len(3), 1);
        assert_eq!(conv.out_len(2), 0);
        let out = conv.forward_inference(&[vec![1.0, 2.0, 3.0, 4.0, 5.0]]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn identity_kernel_copies_input() {
        let mut rng = DetRng::seed_from_u64(1);
        let mut conv = Conv1d::new(&mut rng, 1, 1, 1, Activation::Identity);
        conv.w = vec![1.0];
        conv.b = vec![0.0];
        let out = conv.forward(&[vec![3.0, -1.0, 4.0]]);
        assert_eq!(out[0], vec![3.0, -1.0, 4.0]);
    }

    #[test]
    fn moving_average_kernel() {
        let mut rng = DetRng::seed_from_u64(2);
        let mut conv = Conv1d::new(&mut rng, 1, 1, 2, Activation::Identity);
        conv.w = vec![0.5, 0.5];
        conv.b = vec![0.0];
        let out = conv.forward(&[vec![1.0, 3.0, 5.0]]);
        assert_eq!(out[0], vec![2.0, 4.0]);
    }

    #[test]
    fn gradcheck_weights_and_inputs() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut conv = Conv1d::new(&mut rng, 2, 2, 2, Activation::Tanh);
        let input = vec![vec![0.2, -0.4, 0.6, 0.1], vec![0.5, 0.3, -0.2, 0.8]];
        let out = conv.forward(&input);
        let ones: Vec<Vec<f64>> = out.iter().map(|c| vec![1.0; c.len()]).collect();
        let gin = conv.backward(&ones);

        let loss = |c: &Conv1d, inp: &[Vec<f64>]| -> f64 {
            c.forward_inference(inp)
                .iter()
                .flat_map(|ch| ch.iter())
                .sum()
        };
        let h = 1e-6;
        // Weight gradients.
        let flat = conv.flat_params();
        let mut grads = Vec::new();
        conv.visit_params(&mut |_p, g| grads.extend_from_slice(g));
        for &idx in &[0usize, 3, 7, flat.len() - 1] {
            let mut up = flat.clone();
            up[idx] += h;
            let mut dn = flat.clone();
            dn[idx] -= h;
            conv.load_flat_params(&up);
            let lu = loss(&conv, &input);
            conv.load_flat_params(&dn);
            let ld = loss(&conv, &input);
            conv.load_flat_params(&flat);
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - grads[idx]).abs() < 1e-5,
                "w[{idx}]: {numeric} vs {}",
                grads[idx]
            );
        }
        // Input gradients.
        for ic in 0..2 {
            for t in 0..4 {
                let mut up = input.clone();
                up[ic][t] += h;
                let mut dn = input.clone();
                dn[ic][t] -= h;
                let numeric = (loss(&conv, &up) - loss(&conv, &dn)) / (2.0 * h);
                assert!(
                    (numeric - gin[ic][t]).abs() < 1e-5,
                    "in[{ic}][{t}]: {numeric} vs {}",
                    gin[ic][t]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "kernel must be positive")]
    fn zero_kernel_panics() {
        let mut rng = DetRng::seed_from_u64(4);
        let _ = Conv1d::new(&mut rng, 1, 1, 0, Activation::Identity);
    }
}
