//! Classical additive decomposition: trend + seasonal + remainder.
//!
//! A lightweight STL stand-in used for dataset diagnostics (e.g. verifying
//! that the synthetic generators in `eadrl-datasets` carry the seasonal
//! structure their Table I originals are described with) and available to
//! library users for feature engineering.

/// An additive decomposition `x_t = trend_t + seasonal_t + remainder_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Centered-moving-average trend (endpoints padded with the nearest
    /// computable value).
    pub trend: Vec<f64>,
    /// Phase-mean seasonal component, zero-centered, repeating with the
    /// requested period.
    pub seasonal: Vec<f64>,
    /// What is left: `x - trend - seasonal`.
    pub remainder: Vec<f64>,
    /// The seasonal period used.
    pub period: usize,
}

impl Decomposition {
    /// Seasonal strength in `[0, 1]` (Hyndman's `F_s`): how much of the
    /// detrended variance the seasonal component explains.
    pub fn seasonal_strength(&self) -> f64 {
        let var = |xs: &[f64]| {
            if xs.len() < 2 {
                return 0.0;
            }
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        let detrended: Vec<f64> = self
            .seasonal
            .iter()
            .zip(self.remainder.iter())
            .map(|(s, r)| s + r)
            .collect();
        let vd = var(&detrended);
        if vd < 1e-300 {
            return 0.0;
        }
        (1.0 - var(&self.remainder) / vd).clamp(0.0, 1.0)
    }

    /// Trend strength in `[0, 1]` (Hyndman's `F_t`), analogous to
    /// [`Decomposition::seasonal_strength`].
    pub fn trend_strength(&self) -> f64 {
        let var = |xs: &[f64]| {
            if xs.len() < 2 {
                return 0.0;
            }
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        let deseasoned: Vec<f64> = self
            .trend
            .iter()
            .zip(self.remainder.iter())
            .map(|(t, r)| t + r)
            .collect();
        let vd = var(&deseasoned);
        if vd < 1e-300 {
            return 0.0;
        }
        (1.0 - var(&self.remainder) / vd).clamp(0.0, 1.0)
    }
}

/// Decomposes `series` additively with seasonal `period`.
///
/// Returns `None` when the series is shorter than two full periods or
/// `period < 2` (no seasonal structure to estimate).
pub fn decompose_additive(series: &[f64], period: usize) -> Option<Decomposition> {
    let n = series.len();
    if period < 2 || n < 2 * period {
        return None;
    }

    // 1. Trend: centered moving average of width `period` (standard
    //    even/odd handling: even periods use a 2×MA).
    let mut trend = vec![f64::NAN; n];
    if period % 2 == 1 {
        let half = period / 2;
        for t in half..n - half {
            let window = &series[t - half..=t + half];
            trend[t] = window.iter().sum::<f64>() / period as f64;
        }
    } else {
        let half = period / 2;
        for t in half..n - half {
            // 2×MA: average of the two staggered period-wide windows.
            let first: f64 = series[t - half..t + half].iter().sum::<f64>() / period as f64;
            let second: f64 = series[t - half + 1..=t + half].iter().sum::<f64>() / period as f64;
            trend[t] = 0.5 * (first + second);
        }
    }
    // Pad the endpoints with the nearest computed trend value.
    let first_valid = trend.iter().position(|v| !v.is_nan())?;
    let last_valid = trend.iter().rposition(|v| !v.is_nan())?;
    for t in 0..first_valid {
        trend[t] = trend[first_valid];
    }
    for v in trend.iter_mut().skip(last_valid + 1) {
        *v = f64::NAN; // placeholder, fixed below
    }
    let last_value = trend[last_valid];
    for v in trend.iter_mut().skip(last_valid + 1) {
        *v = last_value;
    }

    // 2. Seasonal: phase means of the detrended series, centered to zero.
    let mut phase_sum = vec![0.0; period];
    let mut phase_count = vec![0usize; period];
    for t in 0..n {
        let d = series[t] - trend[t];
        phase_sum[t % period] += d;
        phase_count[t % period] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(phase_count.iter())
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    let grand = phase_mean.iter().sum::<f64>() / period as f64;
    for p in phase_mean.iter_mut() {
        *p -= grand;
    }
    let seasonal: Vec<f64> = (0..n).map(|t| phase_mean[t % period]).collect();

    // 3. Remainder.
    let remainder: Vec<f64> = (0..n).map(|t| series[t] - trend[t] - seasonal[t]).collect();

    Some(Decomposition {
        trend,
        seasonal,
        remainder,
        period,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(n: usize, period: usize, amp: f64, slope: f64) -> Vec<f64> {
        (0..n)
            .map(|t| {
                slope * t as f64
                    + amp * (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin()
            })
            .collect()
    }

    #[test]
    fn components_add_back_to_the_series() {
        let s = synthetic(120, 12, 5.0, 0.1);
        let d = decompose_additive(&s, 12).unwrap();
        for t in 0..s.len() {
            let rebuilt = d.trend[t] + d.seasonal[t] + d.remainder[t];
            assert!((rebuilt - s[t]).abs() < 1e-9, "t = {t}");
        }
    }

    #[test]
    fn recovers_seasonal_amplitude() {
        let s = synthetic(240, 12, 5.0, 0.0);
        let d = decompose_additive(&s, 12).unwrap();
        let max_season = d.seasonal.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((max_season - 5.0).abs() < 0.3, "amplitude {max_season}");
        assert!(d.seasonal_strength() > 0.95);
    }

    #[test]
    fn recovers_trend_slope() {
        let s = synthetic(240, 12, 2.0, 0.5);
        let d = decompose_additive(&s, 12).unwrap();
        // Interior trend should increase ~0.5 per step.
        let slope = (d.trend[200] - d.trend[40]) / 160.0;
        assert!((slope - 0.5).abs() < 0.02, "slope {slope}");
        assert!(d.trend_strength() > 0.95);
    }

    #[test]
    fn odd_period_works_too() {
        let s = synthetic(140, 7, 3.0, 0.0);
        let d = decompose_additive(&s, 7).unwrap();
        assert!(d.seasonal_strength() > 0.9);
        assert_eq!(d.period, 7);
    }

    #[test]
    fn pure_noise_has_weak_structure() {
        // Deterministic pseudo-noise via an LCG.
        let mut state = 9u64;
        let s: Vec<f64> = (0..200)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let d = decompose_additive(&s, 12).unwrap();
        assert!(d.seasonal_strength() < 0.35, "{}", d.seasonal_strength());
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(decompose_additive(&[1.0; 10], 1).is_none());
        assert!(decompose_additive(&[1.0; 10], 6).is_none());
        assert!(decompose_additive(&[], 4).is_none());
    }

    #[test]
    fn constant_series_has_zero_strengths() {
        let s = vec![5.0; 60];
        let d = decompose_additive(&s, 6).unwrap();
        assert_eq!(d.seasonal_strength(), 0.0);
        assert!(d.remainder.iter().all(|r| r.abs() < 1e-9));
    }
}
