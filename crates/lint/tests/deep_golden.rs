//! Integration suite for the deep (call-graph) analysis.
//!
//! Three layers:
//!
//! 1. **Golden chains** over `fixtures/deep_golden/` — a parse-only
//!    mini-crate with hand-computed panic chains exercising trait
//!    dispatch, closures inside a `par_map`-style combinator, a free fn
//!    shadowing a trait-method name, and cross-module `use` resolution.
//! 2. **Deliberately broken** `fixtures/deep_bad/` — one violation per
//!    pass (panic chain, hot-path `Vec::push`, unguarded
//!    `Instant::now`), each of which must fire. CI runs the binary over
//!    the same tree with inverted exit-code checks.
//! 3. **Workspace acceptance** — the whole workspace is deep-clean
//!    under the real `DESIGN.md`: zero findings across line rules and
//!    all three deep passes, zero `panics-via` pub fns, zero stale
//!    suppression markers. The `cargo test` twin of the blocking CI
//!    step.

use eadrl_lint::deep::{self, Analysis, HotPathConfig};
use eadrl_lint::rules::{HOT_RULE, PANIC_RULE, TAINT_RULE};
use eadrl_lint::source::SourceFile;
use eadrl_lint::{default_rules, lint_file, LintContext, ObsSchema};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Loads a fixture tree as its own little workspace (its `crates/*/
/// Cargo.toml` manifests are the dependency map).
fn load_fixture(name: &str) -> Analysis {
    let root = fixture_root(name);
    Analysis::load(&[root.clone()], &root).expect("fixture tree loads")
}

fn verdict<'a>(report: &'a deep::DeepReport, qualified: &str) -> &'a deep::VerdictEntry {
    report
        .verdicts
        .iter()
        .find(|v| v.qualified == qualified)
        .unwrap_or_else(|| {
            panic!(
                "no verdict for {qualified}; have: {:?}",
                report
                    .verdicts
                    .iter()
                    .map(|v| v.qualified.as_str())
                    .collect::<Vec<_>>()
            )
        })
}

/// Asserts every needle appears in `hay`, in the given order — the
/// hand-computed shape of a chain without pinning file:line noise.
fn in_order(hay: &str, needles: &[&str]) {
    let mut at = 0;
    for n in needles {
        match hay[at..].find(n) {
            Some(i) => at += i + n.len(),
            None => panic!("expected {n:?} (in order, after byte {at}) in:\n  {hay}"),
        }
    }
}

// ---------------------------------------------------------------- golden

#[test]
fn golden_verdict_table_is_exactly_the_pub_fns() {
    let a = load_fixture("deep_golden");
    let r = deep::run_deep(&a, None);
    let names: Vec<&str> = r.verdicts.iter().map(|v| v.qualified.as_str()).collect();
    // Sorted by `run_deep`; trait-impl methods are not `pub` so they
    // carry no verdict of their own.
    assert_eq!(
        names,
        [
            "mini::call_free",
            "mini::evaluate",
            "mini::evaluate_all",
            "mini::helper",
            "mini::score",
        ]
    );
}

#[test]
fn golden_trait_dispatch_reaches_the_panicking_impl() {
    let a = load_fixture("deep_golden");
    let r = deep::run_deep(&a, None);
    let v = verdict(&r, "mini::evaluate");
    assert_eq!(v.verdict, "panics-via");
    let chain = v.chain.as_deref().expect("panics-via carries a chain");
    in_order(chain, &["mini::evaluate", "Risky::score", ".unwrap()"]);
}

#[test]
fn golden_closure_in_par_map_is_attributed_to_enclosing_fn() {
    let a = load_fixture("deep_golden");
    let r = deep::run_deep(&a, None);
    let v = verdict(&r, "mini::evaluate_all");
    assert_eq!(v.verdict, "panics-via");
    let chain = v.chain.as_deref().expect("chain");
    // The `helper(*x)` call sits inside the closure passed to
    // `par_map`, resolved through `use crate::util::helper`, and
    // panics two private hops down in another module.
    in_order(
        chain,
        &[
            "mini::evaluate_all",
            "mini::helper",
            "mini::deep",
            ".expect()",
        ],
    );
}

#[test]
fn golden_cross_module_chain_through_private_fns() {
    let a = load_fixture("deep_golden");
    let r = deep::run_deep(&a, None);
    let v = verdict(&r, "mini::helper");
    assert_eq!(v.verdict, "panics-via");
    in_order(
        v.chain.as_deref().expect("chain"),
        &["mini::helper", "mini::deep", ".expect()"],
    );
}

#[test]
fn golden_shadowed_free_fn_stays_safe() {
    let a = load_fixture("deep_golden");
    let r = deep::run_deep(&a, None);
    // `shadow::call_free` calls the module-local free `score`; if the
    // resolver confused it with the `Model::score` implementors, the
    // panic in `Risky::score` would leak into both of these.
    for q in ["mini::score", "mini::call_free"] {
        let v = verdict(&r, q);
        assert_eq!(v.verdict, "safe", "{q} must not inherit Risky::score");
        assert_eq!(v.chain, None);
    }
}

#[test]
fn golden_findings_are_one_per_panicking_pub_fn() {
    let a = load_fixture("deep_golden");
    let r = deep::run_deep(&a, None);
    assert_eq!(
        r.findings.len(),
        3,
        "evaluate, evaluate_all, helper: {:#?}",
        r.findings
    );
    assert!(r.findings.iter().all(|f| f.rule == PANIC_RULE));
}

// -------------------------------------------------------------- deep_bad

fn bad_report() -> deep::DeepReport {
    let root = fixture_root("deep_bad");
    let a = Analysis::load(&[root.clone()], &root).expect("fixture tree loads");
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("fixture DESIGN.md");
    let hot = HotPathConfig::from_design_md(&design).expect("fixture hot-path table parses");
    deep::run_deep(&a, Some(&hot))
}

#[test]
fn bad_fixture_panic_chain_fires() {
    let r = bad_report();
    let v = verdict(&r, "bad::entry");
    assert_eq!(v.verdict, "panics-via");
    in_order(
        v.chain.as_deref().expect("chain"),
        &["bad::entry", "bad::inner", ".unwrap()"],
    );
    assert!(
        r.findings.iter().any(|f| f.rule == PANIC_RULE),
        "panic finding missing: {:#?}",
        r.findings
    );
}

#[test]
fn bad_fixture_hot_path_alloc_fires() {
    let r = bad_report();
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == HOT_RULE)
        .unwrap_or_else(|| panic!("hot-path finding missing: {:#?}", r.findings));
    in_order(&f.message, &["Engine::update", ".push()"]);
}

#[test]
fn bad_fixture_determinism_taint_fires() {
    let r = bad_report();
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == TAINT_RULE)
        .unwrap_or_else(|| panic!("taint finding missing: {:#?}", r.findings));
    in_order(&f.message, &["bad::fit", "bad::stamp", "Instant::now"]);
}

// ------------------------------------------------------------- workspace

/// End-to-end acceptance: the workspace itself is deep-clean under the
/// real `DESIGN.md` — line rules, panic reachability, hot-path
/// allocations, determinism taint, and stale markers all at zero.
#[test]
fn workspace_is_deep_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let md = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md readable");
    let schema = ObsSchema::from_design_md(&md);
    assert!(schema.is_some(), "telemetry schema table must parse");
    let hot = HotPathConfig::from_design_md(&md).expect("hot-path table must parse");
    assert!(
        hot.entries.iter().any(|e| !e.exempt),
        "hot-path table must name at least one checked fn"
    );

    // Workspace-relative paths, exactly as the CLI sees them when run
    // from the repo root (the path-scoped rules key off `crates/…/src/`
    // prefixes).
    let mut files = Vec::new();
    for dir in ["crates", "src", "examples"] {
        let p = root.join(dir);
        if !p.exists() {
            continue;
        }
        for path in eadrl_lint::collect_rs_files(&p).expect("walk workspace") {
            let rel = path
                .strip_prefix(root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path).expect("read source");
            files.push(SourceFile::parse(&rel, &text));
        }
    }
    let analysis = Analysis::from_files(files, root);

    let rules = default_rules();
    let ctx = LintContext { schema };
    let mut line_findings = Vec::new();
    let mut suppressed = Vec::new();
    for file in &analysis.files {
        let (active, supp) = lint_file(&rules, &ctx, file);
        line_findings.extend(active);
        suppressed.extend(supp);
    }

    let deep_report = deep::run_deep(&analysis, Some(&hot));
    let line_used = deep::line_used_markers(&analysis.files, &suppressed);
    let stale = deep::stale_allows(&analysis.files, &line_used, &deep_report.used_markers, true);

    let mut bad: Vec<String> = Vec::new();
    for f in line_findings
        .iter()
        .chain(&deep_report.findings)
        .chain(&stale)
    {
        bad.push(format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message));
    }
    for v in &deep_report.verdicts {
        if v.verdict == "panics-via" {
            bad.push(format!(
                "{} is panic-reachable: {}",
                v.qualified,
                v.chain.as_deref().unwrap_or("?")
            ));
        }
    }
    assert!(
        bad.is_empty(),
        "workspace must stay deep-clean; fix or annotate:\n{}",
        bad.join("\n")
    );
}
