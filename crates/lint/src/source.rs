//! Per-file analysis context: lexed tokens plus the derived facts every
//! rule needs — `#[cfg(test)]` spans, suppression markers, doc-comment
//! and attribute line coverage.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// The suppression marker prefix inside comments.
pub const MARKER: &str = "eadrl-lint:";

/// A parsed `// eadrl-lint: allow(rule, …): justification` marker.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules the marker names.
    pub rules: Vec<String>,
    /// The line(s) the marker applies to.
    pub lines: Vec<usize>,
    /// The line the marker itself sits on (for diagnostics).
    pub marker_line: usize,
    /// Justification text after the rule list (may be empty — the engine
    /// turns that into a finding).
    pub justification: String,
}

/// A file ready for rule evaluation.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as given (normalized to `/` separators, no leading `./`).
    pub rel_path: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Comments.
    pub comments: Vec<Comment>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Parsed suppression markers.
    pub suppressions: Vec<Suppression>,
    /// Lines covered by doc comments or `#[doc…]` attributes.
    pub doc_lines: BTreeSet<usize>,
    /// Lines covered by attributes (`#[…]`).
    pub attr_lines: BTreeSet<usize>,
    /// Lines that contain any source text (tokens or comments) — used to
    /// distinguish blank lines when walking upward from an item.
    pub occupied_lines: BTreeSet<usize>,
    /// line → rules allowed on that line (derived from `suppressions`).
    allow: BTreeMap<usize, BTreeSet<String>>,
}

impl SourceFile {
    /// Lexes and analyzes `text`.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let rel_path = rel_path.trim_start_matches("./").replace('\\', "/");
        let test_spans = find_test_spans(&lexed.tokens);
        let suppressions = find_suppressions(&lexed.comments);
        let (doc_lines, attr_lines) = doc_and_attr_lines(&lexed.tokens, &lexed.comments);
        let mut occupied_lines = BTreeSet::new();
        for t in &lexed.tokens {
            occupied_lines.insert(t.line);
        }
        for c in &lexed.comments {
            for l in c.line..=c.end_line {
                occupied_lines.insert(l);
            }
        }
        let mut allow: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
        for s in &suppressions {
            for &l in &s.lines {
                allow.entry(l).or_default().extend(s.rules.iter().cloned());
            }
        }
        SourceFile {
            rel_path,
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_spans,
            suppressions,
            doc_lines,
            attr_lines,
            occupied_lines,
            allow,
        }
    }

    /// True when `line` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// True when `rule` is suppressed on `line`.
    pub fn allows(&self, line: usize, rule: &str) -> bool {
        self.allow
            .get(&line)
            .map(|set| set.contains(rule))
            .unwrap_or(false)
    }

    /// True when the path starts with any of the given prefixes.
    pub fn in_any(&self, prefixes: &[&str]) -> bool {
        prefixes.iter().any(|p| self.rel_path.starts_with(p))
    }
}

/// Parses suppression markers out of the comment list.
///
/// Grammar: `eadrl-lint: allow(<rule>[, <rule>]*)` followed by a
/// mandatory free-text justification. A marker sharing its line with
/// code applies to that line; a marker on its own line applies to the
/// next line.
fn find_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments *describe* the marker syntax (this crate's own
        // docs do); only plain comments can carry live markers.
        if c.doc || c.text.starts_with("//!") || c.text.starts_with("/*!") {
            continue;
        }
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let rest = c.text[at + MARKER.len()..].trim_start();
        let (rules, justification) = match rest.strip_prefix("allow(") {
            Some(tail) => match tail.find(')') {
                Some(close) => {
                    let rules: Vec<String> = tail[..close]
                        .split(',')
                        .map(|r| r.trim().to_string())
                        .filter(|r| !r.is_empty())
                        .collect();
                    let mut just = tail[close + 1..].trim();
                    // Strip the leading separator conventions: `: why`,
                    // `- why`, `— why`.
                    just = just
                        .trim_start_matches([':', '-', ','])
                        .trim_start_matches('\u{2014}')
                        .trim();
                    let just = just.trim_end_matches("*/").trim();
                    (rules, just.to_string())
                }
                None => (Vec::new(), String::new()),
            },
            None => (Vec::new(), String::new()),
        };
        let lines = if c.own_line {
            vec![c.end_line + 1]
        } else {
            vec![c.line]
        };
        out.push(Suppression {
            rules,
            lines,
            marker_line: c.line,
            justification,
        });
    }
    out
}

/// Finds the inclusive line spans of items annotated `#[cfg(test)]` or
/// `#[test]` (the item being the next `{…}` block or `;`-terminated
/// declaration after the attribute stack).
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_attr_start(tokens, i) {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        let (attr_tokens, after) = attr_body(tokens, i);
        if !attr_is_test(&attr_tokens) {
            i = after;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = after;
        while is_attr_start(tokens, j) {
            let (_, next) = attr_body(tokens, j);
            j = next;
        }
        // The item body: first `{` at depth 0 opens it (then match braces);
        // a `;` before any `{` ends a declaration-only item.
        let mut depth = 0usize;
        let mut end_line = attr_line;
        while j < tokens.len() {
            let t = &tokens[j];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "{") => {
                    depth += 1;
                }
                (TokenKind::Punct, "}") => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = t.line;
                        j += 1;
                        break;
                    }
                }
                (TokenKind::Punct, ";") if depth == 0 => {
                    end_line = t.line;
                    j += 1;
                    break;
                }
                _ => {}
            }
            end_line = t.line;
            j += 1;
        }
        spans.push((attr_line, end_line));
        i = j;
    }
    spans
}

fn is_attr_start(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i), Some(t) if t.kind == TokenKind::Punct && t.text == "#")
        && matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct && t.text == "[")
}

/// Returns the tokens inside `#[…]` starting at `i`, and the index just
/// past the closing `]`.
fn attr_body(tokens: &[Token], i: usize) -> (Vec<&Token>, usize) {
    let mut body = Vec::new();
    let mut depth = 0usize;
    let mut j = i + 1; // at `[`
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct && t.text == "[" {
            depth += 1;
            if depth == 1 {
                j += 1;
                continue;
            }
        } else if t.kind == TokenKind::Punct && t.text == "]" {
            depth -= 1;
            if depth == 0 {
                return (body, j + 1);
            }
        }
        body.push(t);
        j += 1;
    }
    (body, j)
}

/// True for `#[test]` and `#[cfg(test)]`-style attributes. `not(test)`
/// style negations are conservatively treated as non-test.
fn attr_is_test(attr: &[&Token]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// Line coverage of doc comments and attributes (`#[doc…]` counts as
/// documentation).
fn doc_and_attr_lines(
    tokens: &[Token],
    comments: &[Comment],
) -> (BTreeSet<usize>, BTreeSet<usize>) {
    let mut doc_lines = BTreeSet::new();
    let mut attr_lines = BTreeSet::new();
    for c in comments {
        if c.doc {
            for l in c.line..=c.end_line {
                doc_lines.insert(l);
            }
        }
    }
    let mut i = 0;
    while i < tokens.len() {
        if is_attr_start(tokens, i) {
            let start_line = tokens[i].line;
            let (body, after) = attr_body(tokens, i);
            let end_line = tokens
                .get(after.saturating_sub(1))
                .map_or(start_line, |t| t.line);
            for l in start_line..=end_line {
                attr_lines.insert(l);
            }
            if matches!(body.first(), Some(t) if t.text == "doc") {
                for l in start_line..=end_line {
                    doc_lines.insert(l);
                }
            }
            i = after;
        } else {
            i += 1;
        }
    }
    (doc_lines, attr_lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn also_live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn shipped() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test_code(2));
    }

    #[test]
    fn trailing_marker_applies_to_its_own_line() {
        let src = "let x = 1; // eadrl-lint: allow(no-float-eq): deliberate\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allows(1, "no-float-eq"));
        assert!(!f.allows(2, "no-float-eq"));
        assert_eq!(f.suppressions[0].justification, "deliberate");
    }

    #[test]
    fn standalone_marker_applies_to_next_line() {
        let src = "// eadrl-lint: allow(determinism): timing is the payload\nlet t = now();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allows(2, "determinism"));
        assert!(!f.allows(1, "determinism"));
    }

    #[test]
    fn marker_with_multiple_rules() {
        let src = "x(); // eadrl-lint: allow(no-unwrap-in-lib, no-float-eq): both fine here\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allows(1, "no-unwrap-in-lib"));
        assert!(f.allows(1, "no-float-eq"));
    }

    #[test]
    fn marker_without_justification_is_recorded_empty() {
        let src = "x(); // eadrl-lint: allow(no-float-eq)\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        assert!(f.suppressions[0].justification.is_empty());
    }
}
